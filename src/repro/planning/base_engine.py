"""Common machinery for federated query engines.

Lusail and the three baselines share: query parsing/normalization, the
per-query :class:`FederationClient` setup, result finalization (project /
DISTINCT / ORDER BY / LIMIT), and uniform failure handling (virtual
timeouts and mediator memory limits become ``ExecutionOutcome`` statuses,
mirroring the TIMEOUT / OOM / runtime-error annotations in the paper's
plots).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.endpoint.cache import EngineCaches
from repro.endpoint.client import FederationClient
from repro.endpoint.federation import Federation
from repro.exceptions import (
    FederationError,
    MemoryLimitError,
    NetworkError,
    QueryTimeoutError,
    UnsupportedQueryError,
)
from repro.net.metrics import QueryMetrics
from repro.net.simulator import NetworkConfig, local_cluster_config
from repro.obs.registry import MetricsRegistry, get_default_registry
from repro.obs.trace import Tracer, get_default_tracer
from repro.planning.normalize import NormalizedQuery, normalize
from repro.rdf.terms import Variable
from repro.relational.kernels import KernelCounters, kernel_runtime
from repro.relational.relation import Relation
from repro.sparql.ast import SelectQuery, VarExpr
from repro.sparql.evaluator import SelectResult
from repro.sparql.parser import parse_query

#: The paper's per-query timeout (one hour) in virtual milliseconds.
DEFAULT_TIMEOUT_MS = 3_600_000.0


@dataclass
class ExecutionOutcome:
    """Everything a single federated query execution produced."""

    result: SelectResult
    metrics: QueryMetrics
    status: str = "ok"  # ok | timeout | oom | error | unsupported
    error: str | None = None
    plan: object | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def complete(self) -> bool:
        """False when partial-results mode dropped any endpoint."""
        return self.metrics.complete

    def __repr__(self) -> str:
        return (
            f"ExecutionOutcome(status={self.status!r}, rows={len(self.result)}, "
            f"virtual_ms={self.metrics.virtual_ms:.1f}, requests={self.metrics.request_count()})"
        )


@dataclass
class EngineStats:
    """Cross-query bookkeeping (preprocessing, cache sizes)."""

    preprocessing_ms: float = 0.0
    queries_executed: int = 0


class FederatedEngine:
    """Base class: subclasses implement :meth:`_execute_normalized`."""

    name = "abstract"
    #: Index-based engines (SPLENDID, HiBISCuS) pay a preprocessing pass.
    requires_preprocessing = False

    def __init__(
        self,
        federation: Federation,
        network_config: NetworkConfig | None = None,
        caches: EngineCaches | None = None,
        timeout_ms: float | None = DEFAULT_TIMEOUT_MS,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        statistics: str = "charsets",
    ):
        self.federation = federation
        self.network_config = network_config or local_cluster_config()
        self.caches = caches if caches is not None else EngineCaches()
        self.timeout_ms = timeout_ms
        self.stats = EngineStats()
        #: Planner statistics source: "charsets" installs a
        #: characteristic-set :class:`StatisticsProvider` on every built
        #: client (ASK / COUNT / check questions answered from local
        #: summaries when provable, remote probes as fallback); "probe"
        #: keeps the pure probe path.
        self.statistics = statistics
        #: Observability sinks.  Default to the process-wide tracer
        #: (disabled unless a profiling run enables it) and registry;
        #: assignable after construction for per-run isolation.
        self.tracer = tracer if tracer is not None else get_default_tracer()
        self.registry = registry if registry is not None else get_default_registry()
        #: Fault injection / resilience (see repro.faults).  Both are
        #: assignable after construction, like the observability sinks,
        #: and None by default: the engine then behaves bit-identically
        #: to the fault-free simulator.
        self.fault_plan = None
        self.resilience = None
        #: The estimate audit of the most recent :meth:`execute` call
        #: (``NULL_AUDIT`` when tracing is off); profiling harnesses read
        #: it post-hoc to embed raw estimate records in ProfileReports.
        self.last_audit = None
        #: Client construction seam.  ``None`` builds a plain
        #: :class:`FederationClient`; the serving layer installs a
        #: factory that returns a lane-sharing client instead.  The
        #: factory receives the same keyword arguments the default
        #: construction uses.
        self.client_factory = None

    # ------------------------------------------------------------- public

    def build_client(self, metrics: QueryMetrics | None = None) -> FederationClient:
        """The per-execution :class:`FederationClient` for this engine.

        Goes through :attr:`client_factory` when one is installed so the
        serving layer can substitute a client whose virtual network
        shares lanes with other in-flight queries.
        """
        factory = self.client_factory or FederationClient
        client = factory(
            federation=self.federation,
            config=self.network_config,
            caches=self.caches,
            timeout_ms=self.timeout_ms,
            metrics=metrics if metrics is not None else QueryMetrics(),
            tracer=self.tracer,
            registry=self.registry,
            engine=self.name,
            fault_plan=self.fault_plan,
            resilience=self.resilience,
        )
        if self.statistics == "charsets":
            # Installed after construction so serving-layer client
            # factories need not know about the statistics seam.
            from repro.planning.stats import CharsetStatisticsProvider

            client.stats = CharsetStatisticsProvider(client)
        return client

    def execute(self, query: SelectQuery | str, raise_on_failure: bool = False) -> ExecutionOutcome:
        """Run one federated query; failures become outcome statuses."""
        if isinstance(query, str):
            parsed = parse_query(query)
            if not isinstance(parsed, SelectQuery):
                raise UnsupportedQueryError("federated engines execute SELECT queries")
            query = parsed

        metrics = QueryMetrics()
        client = self.build_client(metrics)
        self.last_audit = client.audit
        wall_start = time.perf_counter()
        with self.tracer.span("query", t0=0.0, engine=self.name) as root:
            try:
                normalized = normalize(query)
                relation, end_ms = self._execute_normalized(client, normalized)
                result = self._finalize(relation, normalized)
                metrics.virtual_ms = end_ms
                metrics.result_rows = len(result)
                outcome = ExecutionOutcome(result=result, metrics=metrics)
            except QueryTimeoutError as exc:
                metrics.virtual_ms = exc.elapsed_ms
                outcome = ExecutionOutcome(
                    result=SelectResult((), []), metrics=metrics, status="timeout", error=str(exc)
                )
            except MemoryLimitError as exc:
                outcome = ExecutionOutcome(
                    result=SelectResult((), []), metrics=metrics, status="oom", error=str(exc)
                )
            except UnsupportedQueryError as exc:
                outcome = ExecutionOutcome(
                    result=SelectResult((), []),
                    metrics=metrics,
                    status="unsupported",
                    error=str(exc),
                )
            except (FederationError, NetworkError) as exc:
                outcome = ExecutionOutcome(
                    result=SelectResult((), []), metrics=metrics, status="error", error=str(exc)
                )
            root.set(
                status=outcome.status,
                result_rows=len(outcome.result),
                requests=metrics.request_count(),
                rows=metrics.rows_shipped(),
            ).end(metrics.virtual_ms)
        metrics.wall_ms = (time.perf_counter() - wall_start) * 1000.0
        self.registry.inc("queries_total", engine=self.name, status=outcome.status)
        self.stats.queries_executed += 1
        if raise_on_failure and not outcome.ok:
            raise FederationError(f"{self.name} failed ({outcome.status}): {outcome.error}")
        return outcome

    # ----------------------------------------------------------- template

    @contextmanager
    def _mediator_runtime(self, client: FederationClient, max_rows: int | None):
        """Install the columnar kernel runtime for one query execution.

        Joins/unions stream ``max_rows`` inside the kernels (aborting
        mid-join with :class:`MemoryLimitError`, status ``oom``) and the
        kernel work counters are flushed to the metrics registry under
        this engine's label when the execution ends.
        """
        counters = KernelCounters()
        try:
            with kernel_runtime(
                max_rows=max_rows, counters=counters, metrics=client.metrics
            ):
                yield counters
        finally:
            for name, value in counters.items():
                if value:
                    self.registry.inc(name, value, engine=self.name)

    def _execute_normalized(
        self, client: FederationClient, normalized: NormalizedQuery
    ) -> tuple[Relation, float]:
        """Produce the (pre-modifier) relation and the virtual end time."""
        raise NotImplementedError

    # --------------------------------------------------------- finalizing

    def _finalize(self, relation: Relation, normalized: NormalizedQuery) -> SelectResult:
        projected = normalized.projected_variables()
        relation = relation.project(projected)
        if normalized.distinct:
            relation = relation.distinct()
        rows = relation.rows
        if normalized.order_by:
            rows = _order_rows(rows, projected, normalized)
        rows = rows[normalized.offset:]
        if normalized.limit is not None:
            rows = rows[: normalized.limit]
        return SelectResult(projected, rows)


def _order_rows(rows, projected: tuple[Variable, ...], normalized: NormalizedQuery):
    """Apply ORDER BY at the mediator (variable keys only)."""
    index_of = {variable: index for index, variable in enumerate(projected)}

    def key(row):
        keys = []
        for condition in normalized.order_by:
            expression = condition.expression
            value = None
            if isinstance(expression, VarExpr):
                position = index_of.get(expression.variable)
                if position is not None:
                    value = row[position]
            sort_key = (0,) if value is None else value.sort_key()
            keys.append(_Descending(sort_key) if not condition.ascending else sort_key)
        return tuple(keys)

    return sorted(rows, key=key)


class _Descending:
    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other):
        return other.key < self.key

    def __eq__(self, other):
        return isinstance(other, _Descending) and self.key == other.key
