"""ASK-based source selection.

Both Lusail and FedX are index-free: before planning, they send one
SPARQL ASK per triple pattern to every federation member to learn which
endpoints can contribute answers (paper Sec III).  Results are cached in
the engine's hash table, so repeated queries skip the probes — the
setting under which all the paper's measurements are reported.

The probes for one pattern go to all endpoints in parallel; probes for
different patterns are pipelined behind them on each endpoint's lane.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.endpoint.client import FederationClient
from repro.rdf.terms import Variable
from repro.rdf.triple import TriplePattern


@dataclass
class SourceSelection:
    """Which endpoints are relevant to each triple pattern."""

    # TriplePattern hashes are cached at construction, so the per-pattern
    # lookups engines issue during planning are cheap dict probes.
    sources: dict[TriplePattern, tuple[str, ...]] = field(default_factory=dict)

    def relevant(self, pattern: TriplePattern) -> tuple[str, ...]:
        return self.sources.get(pattern, ())

    def all_sources(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for endpoints in self.sources.values():
            for name in endpoints:
                seen.setdefault(name, None)
        return tuple(seen)

    def restrict(self, pattern: TriplePattern, endpoints: tuple[str, ...]) -> None:
        """Narrow a pattern's sources (HiBISCuS-style pruning)."""
        current = set(self.sources.get(pattern, ()))
        self.sources[pattern] = tuple(name for name in endpoints if name in current)


def _probe_pattern(pattern: TriplePattern) -> TriplePattern:
    """The pattern actually ASKed.

    Concrete subjects/objects stay (they make probes selective); a
    variable predicate makes the probe trivially true everywhere, which
    is also what real systems observe.
    """
    return pattern


def select_sources(
    client: FederationClient,
    patterns: list[TriplePattern],
    at_ms: float,
    endpoint_names: list[str] | None = None,
) -> tuple[SourceSelection, float]:
    """Run ASK source selection; returns the selection and the end time.

    When the client carries a characteristic-set statistics provider,
    each (pattern, endpoint) question is answered from the endpoint's
    local summary first; the ASK probe is issued only when the summary
    cannot prove the answer (the provider's verdicts are exact, so the
    resulting :class:`SourceSelection` is identical either way).
    """
    names = endpoint_names if endpoint_names is not None else client.federation.names()
    provider = getattr(client, "stats", None)
    selection = SourceSelection()
    finish = at_ms
    for pattern in patterns:
        if pattern in selection.sources:
            continue
        probe = _probe_pattern(pattern)
        relevant: list[str] = []
        for name in names:
            answer = None
            if provider is not None:
                answer, end = provider.can_match(name, probe, at_ms)
            if answer is None:
                answer, end = client.ask(name, probe, at_ms)
            finish = max(finish, end)
            if answer:
                relevant.append(name)
        selection.sources[pattern] = tuple(relevant)
    return selection, finish


def refine_sources_with_bindings(
    client: FederationClient,
    pattern: TriplePattern,
    variable: Variable,
    bound_patterns: list[TriplePattern],
    candidates: tuple[str, ...],
    at_ms: float,
) -> tuple[tuple[str, ...], float]:
    """Re-run source selection for a generic pattern with found bindings.

    Paper Alg 3, line 13: for patterns like ``(?s, ?p, ?o)`` that are
    nominally relevant everywhere, probing with actual bindings of the
    join variable removes endpoints that cannot contribute, which "costs
    significantly less than evaluating the delayed subquery" there.
    """
    finish = at_ms
    provider = getattr(client, "stats", None)
    relevant: list[str] = []
    for name in candidates:
        keep = False
        for bound in bound_patterns:
            answer = None
            if provider is not None:
                # Summaries prove most misses (absent predicate, object
                # outside the histogram) without shipping an ASK.
                answer, end = provider.can_match(name, bound, at_ms)
            if answer is None:
                answer, end = client.ask(name, bound, at_ms)
            finish = max(finish, end)
            if answer:
                keep = True
                break
        if keep:
            relevant.append(name)
    return tuple(relevant), finish
