"""Operands: the execution units of the baseline engines.

FedX (and HiBISCuS, which reuses its executor) evaluates a query as a
left-deep sequence of operands, where an operand is either an *exclusive
group* — triple patterns whose only relevant source is one and the same
endpoint, evaluable there as a unit — or a single triple pattern sent to
all its relevant sources.  Join order follows FedX's variable-counting
heuristic: prefer operands with the fewest free variables given what is
already bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.planning.source_selection import SourceSelection
from repro.rdf.terms import Variable
from repro.rdf.triple import TriplePattern
from repro.sparql.ast import (
    BGP,
    Expression,
    Filter,
    GroupPattern,
    PatternNode,
    SelectQuery,
    ValuesPattern,
)


@dataclass
class Operand:
    """One join step: a pattern group bound to its relevant sources."""

    patterns: tuple[TriplePattern, ...]
    sources: tuple[str, ...]
    filters: tuple[Expression, ...] = ()
    exclusive: bool = False
    optional_group: int | None = None

    def variables(self) -> set[Variable]:
        found: set[Variable] = set()
        for pattern in self.patterns:
            found |= pattern.variables()
        return found

    def free_variables(self, bound: set[Variable]) -> int:
        return len(self.variables() - bound)

    def to_select(
        self, projection: tuple[Variable, ...], values: ValuesPattern | None = None
    ) -> SelectQuery:
        elements: list[PatternNode] = []
        if values is not None:
            elements.append(values)
        elements.append(BGP(self.patterns))
        for expression in self.filters:
            elements.append(Filter(expression))
        return SelectQuery(
            where=GroupPattern(elements),
            select_vars=projection if projection else None,
        )


def build_operands(
    patterns: list[TriplePattern],
    selection: SourceSelection,
    filters: tuple[Expression, ...],
    optional_group: int | None = None,
) -> tuple[list[Operand], list[Expression]]:
    """Form exclusive groups + singleton operands, pushing filters.

    Returns the operand list and the filters that could not be pushed
    (to be applied at the mediator).
    """
    exclusive: dict[tuple[str, ...], list[TriplePattern]] = {}
    singleton_patterns: list[TriplePattern] = []
    for pattern in patterns:
        sources = selection.relevant(pattern)
        if len(sources) == 1:
            exclusive.setdefault(sources, []).append(pattern)
        else:
            singleton_patterns.append(pattern)

    operands: list[Operand] = []
    for sources, group in exclusive.items():
        operands.append(
            Operand(patterns=tuple(group), sources=sources, exclusive=len(group) > 1,
                    optional_group=optional_group)
        )
    for pattern in singleton_patterns:
        operands.append(
            Operand(
                patterns=(pattern,),
                sources=selection.relevant(pattern),
                optional_group=optional_group,
            )
        )

    # Push filters into the first operand covering all their variables.
    residue: list[Expression] = []
    for expression in filters:
        vars = expression.variables()
        target = None
        for operand in operands:
            if vars and vars <= operand.variables():
                target = operand
                break
        if target is None:
            residue.append(expression)
        else:
            target.filters = target.filters + (expression,)
    return operands, residue


def order_operands(operands: list[Operand]) -> list[Operand]:
    """FedX's variable-counting join order.

    Greedy: repeatedly pick the operand with the fewest free variables
    given the variables bound so far, preferring exclusive groups and
    operands connected to the bound set.  (Schwarte et al. 2011, Sec 5.)
    """
    remaining = list(operands)
    ordered: list[Operand] = []
    bound: set[Variable] = set()
    while remaining:
        def rank(operand: Operand):
            connected = bool(operand.variables() & bound) or not bound
            return (
                0 if connected else 1,
                operand.free_variables(bound),
                0 if operand.exclusive else 1,
                -len(operand.patterns),
            )

        best = min(remaining, key=rank)
        remaining.remove(best)
        ordered.append(best)
        bound |= best.variables()
    return ordered
