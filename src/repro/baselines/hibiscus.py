"""HiBISCuS re-implementation (Saleem & Ngonga Ngomo, ESWC 2014).

HiBISCuS is a *source-selection add-on*: it builds, per endpoint and per
predicate, summaries of the URI **authorities** occurring in subject and
object position.  At query time it prunes, for every join variable, the
endpoints whose authorities cannot intersect those of the join partners
— two IRIs can only be equal if their authorities match.  Execution then
proceeds exactly as FedX (the configuration the paper evaluates:
"we use it on top of FedX").

Preprocessing cost is proportional to the data size, mirroring the
paper's index-construction measurements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.fedx import FedXConfig, FedXEngine
from repro.endpoint.client import FederationClient
from repro.endpoint.federation import Federation
from repro.planning.normalize import Branch
from repro.planning.source_selection import SourceSelection
from repro.rdf.terms import Term, Variable
from repro.rdf.triple import TriplePattern


@dataclass
class AuthoritySummary:
    """Per-endpoint authority sets, keyed by predicate."""

    subject_authorities: dict[Term, frozenset[str]] = field(default_factory=dict)
    object_authorities: dict[Term, frozenset[str]] = field(default_factory=dict)
    triples_scanned: int = 0

    def subjects(self, predicate: Term) -> frozenset[str]:
        return self.subject_authorities.get(predicate, frozenset())

    def objects(self, predicate: Term) -> frozenset[str]:
        return self.object_authorities.get(predicate, frozenset())


def build_authority_index(federation: Federation) -> dict[str, AuthoritySummary]:
    """Scan every endpoint and summarize authorities (preprocessing)."""
    index: dict[str, AuthoritySummary] = {}
    for endpoint in federation:
        summary = AuthoritySummary(triples_scanned=len(endpoint.store))
        for predicate in endpoint.store.predicates():
            summary.subject_authorities[predicate] = frozenset(
                endpoint.store.subject_authorities(predicate)
            )
            summary.object_authorities[predicate] = frozenset(
                endpoint.store.object_authorities(predicate)
            )
        index[endpoint.name] = summary
    return index


class HibiscusEngine(FedXEngine):
    """FedX executor with HiBISCuS authority-based source pruning."""

    name = "HiBISCuS"
    requires_preprocessing = True

    def __init__(self, federation, network_config=None, caches=None,
                 timeout_ms=None, config: FedXConfig | None = None):
        super().__init__(federation, network_config, caches, timeout_ms, config)
        start = time.perf_counter()
        self.index = build_authority_index(federation)
        self.stats.preprocessing_ms = (time.perf_counter() - start) * 1000.0

    # -------------------------------------------------------------- prune

    def _authorities_for(
        self, endpoint: str, pattern: TriplePattern, position: str
    ) -> frozenset[str] | None:
        """Authority set of a pattern position at one endpoint.

        ``None`` means "cannot prune" (variable predicate, literal-heavy
        position, or no summary).
        """
        predicate = pattern.predicate
        if isinstance(predicate, Variable):
            return None
        summary = self.index.get(endpoint)
        if summary is None:
            return None
        if position == "subject":
            return summary.subjects(predicate)
        return summary.objects(predicate)

    def _prune_sources(self, client: FederationClient, branch: Branch,
                       selection: SourceSelection, at_ms: float) -> float:
        """Drop endpoints whose authorities cannot join (index-only, free)."""
        patterns = list(branch.all_patterns())
        by_variable: dict[Variable, list[tuple[TriplePattern, str]]] = {}
        for pattern in patterns:
            for variable in pattern.variables():
                for position in pattern.variable_positions(variable):
                    if position == "predicate":
                        continue
                    by_variable.setdefault(variable, []).append((pattern, position))

        for variable, occurrences in by_variable.items():
            if len(occurrences) < 2:
                continue
            # Union of authorities each occurrence can contribute.
            union_per_occurrence: list[frozenset[str] | None] = []
            for pattern, position in occurrences:
                merged: set[str] = set()
                prunable = True
                for endpoint in selection.relevant(pattern):
                    authorities = self._authorities_for(endpoint, pattern, position)
                    if authorities is None:
                        prunable = False
                        break
                    merged |= authorities
                union_per_occurrence.append(frozenset(merged) if prunable else None)

            for index, (pattern, position) in enumerate(occurrences):
                other_unions = [
                    union for j, union in enumerate(union_per_occurrence) if j != index
                ]
                if any(union is None for union in other_unions):
                    continue
                allowed: set[str] = set()
                first = True
                for union in other_unions:
                    assert union is not None
                    allowed = set(union) if first else allowed & set(union)
                    first = False
                kept = []
                for endpoint in selection.relevant(pattern):
                    authorities = self._authorities_for(endpoint, pattern, position)
                    # An empty authority set means the position holds
                    # literals/blank nodes there — the summary cannot
                    # decide, so the endpoint must be kept.
                    if authorities is None or not authorities or not allowed or authorities & allowed:
                        kept.append(endpoint)
                if kept and len(kept) < len(selection.relevant(pattern)):
                    selection.sources[pattern] = tuple(kept)
        return at_ms
