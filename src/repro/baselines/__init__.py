"""Baseline federated engines: FedX, SPLENDID, HiBISCuS."""

from repro.baselines.bound_join import DEFAULT_BLOCK_SIZE, bound_join, evaluate_operand
from repro.baselines.fedx import FedXConfig, FedXEngine
from repro.baselines.hibiscus import AuthoritySummary, HibiscusEngine, build_authority_index
from repro.baselines.operands import Operand, build_operands, order_operands
from repro.baselines.splendid import SplendidConfig, SplendidEngine
from repro.baselines.void_index import EndpointVoid, VoidIndex, build_void_index

__all__ = [
    "AuthoritySummary",
    "DEFAULT_BLOCK_SIZE",
    "EndpointVoid",
    "FedXConfig",
    "FedXEngine",
    "HibiscusEngine",
    "Operand",
    "SplendidConfig",
    "SplendidEngine",
    "VoidIndex",
    "bound_join",
    "build_authority_index",
    "build_operands",
    "build_void_index",
    "evaluate_operand",
    "order_operands",
]

from repro.baselines.anapsid import AnapsidConfig, AnapsidEngine

__all__ += ["AnapsidConfig", "AnapsidEngine"]
