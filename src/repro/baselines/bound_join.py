"""FedX-style block bound joins.

The bound join ships the current intermediate solutions to the next
operand's endpoints in blocks (FedX's block nested-loop join, default
block size 15), one request per block per endpoint, **serially across
blocks** — "only one join step is processed at a time" (paper Sec II).
This is the mechanism whose request count scales with the intermediate
result size and produces the blow-up of the paper's Fig 3.
"""

from __future__ import annotations

from repro.baselines.operands import Operand
from repro.endpoint.client import FederationClient
from repro.net import metrics as metrics_module
from repro.rdf.terms import Variable
from repro.relational.relation import Relation
from repro.sparql.ast import ValuesPattern

#: FedX's default bound-join block size.
DEFAULT_BLOCK_SIZE = 15


def evaluate_operand(
    client: FederationClient,
    operand: Operand,
    projection: tuple[Variable, ...],
    at_ms: float,
    estimated_rows: float | None = None,
) -> tuple[Relation, float]:
    """Evaluate an operand unbound at all its sources (first join step).

    ``estimated_rows`` is the caller's index-based cardinality estimate
    (SPLENDID's VoID numbers); when given, the estimate-vs-actual pair
    is recorded in the EXPLAIN ANALYZE audit.
    """
    query = operand.to_select(projection)
    relation = Relation(projection, partitions=max(1, len(operand.sources)))
    finish = at_ms
    mark = client.metrics.mark()
    with client.tracer.span("operand", t0=at_ms, endpoints=list(operand.sources)) as span:
        if estimated_rows is not None:
            span.set(estimated_cardinality=estimated_rows)
        for endpoint in operand.sources:
            result, end = client.select(endpoint, query, at_ms)
            finish = max(finish, end)
            relation.rows.extend(result.rows)
        if estimated_rows is not None and client.audit.enabled:
            client.audit.record(
                "void_estimate",
                estimated_rows,
                len(relation),
                span=span,
                mode="hash",
            )
        span.set(
            rows=len(relation), requests=client.metrics.requests_since(mark)
        ).end(finish)
    return relation, finish


def bound_join(
    client: FederationClient,
    current: Relation,
    operand: Operand,
    projection: tuple[Variable, ...],
    at_ms: float,
    block_size: int = DEFAULT_BLOCK_SIZE,
    stop_after_rows: int | None = None,
    estimated_rows: float | None = None,
) -> tuple[Relation, float]:
    """One bound-join step: bind shared vars of ``current`` into ``operand``.

    Returns the *joined* relation.  When there are no shared variables the
    operand is evaluated unbound and cross-joined.

    ``stop_after_rows`` implements FedX's first-results cut-off for LIMIT
    queries: blocks are joined as they return and the loop stops once the
    joined relation reaches the requested size (sound because the join
    distributes over the union of binding blocks).

    ``estimated_rows`` is the caller's index-based estimate of the
    operand's extent; when given, it is audited against the rows the
    bound requests actually shipped back.
    """
    shared = tuple(
        sorted(set(current.vars) & operand.variables(), key=lambda v: v.name)
    )
    if not shared or not current.rows:
        fetched, end = evaluate_operand(
            client, operand, projection, at_ms, estimated_rows=estimated_rows
        )
        return current.join(fetched), end

    bindings = current.project(shared).distinct()
    binding_rows = [row for row in bindings.rows if None not in row]
    out_vars = current.vars + tuple(v for v in projection if v not in set(current.vars))
    joined = Relation(out_vars, partitions=max(1, len(operand.sources)))
    now = at_ms
    mark = client.metrics.mark()
    blocks = 0
    fetched_total = 0
    with client.tracer.span(
        "bound_join",
        t0=at_ms,
        bindings=len(binding_rows),
        block_size=block_size,
        endpoints=list(operand.sources),
    ) as span:
        if estimated_rows is not None:
            span.set(estimated_cardinality=estimated_rows)
        for start in range(0, len(binding_rows), block_size):
            block = binding_rows[start:start + block_size]
            query = operand.to_select(projection, values=ValuesPattern(shared, block))
            block_end = now
            fetched = Relation(projection, partitions=max(1, len(operand.sources)))
            for endpoint in operand.sources:
                result, end = client.select(
                    endpoint, query, now, kind=metrics_module.BOUND
                )
                block_end = max(block_end, end)
                fetched.rows.extend(result.rows)
            # Serial across blocks: the next block is issued only after this
            # one completed (FedX's synchronous pipeline).
            now = block_end
            blocks += 1
            fetched_total += len(fetched)
            client.registry.inc("bound_join_blocks_total", engine=client.engine)
            block_joined = current.join(fetched)
            joined.rows.extend(block_joined.project(out_vars).rows)
            if stop_after_rows is not None and len(joined) >= stop_after_rows:
                break
        if estimated_rows is not None and client.audit.enabled:
            client.audit.record(
                "void_estimate",
                estimated_rows,
                fetched_total,
                span=span,
                mode="bind",
            )
        span.set(
            blocks=blocks,
            rows=len(joined),
            requests=client.metrics.requests_since(mark),
        ).end(now)
    return joined, now


def left_bound_join(
    client: FederationClient,
    current: Relation,
    operand: Operand,
    projection: tuple[Variable, ...],
    at_ms: float,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> tuple[Relation, float]:
    """OPTIONAL variant: keep unmatched left rows."""
    shared = tuple(
        sorted(set(current.vars) & operand.variables(), key=lambda v: v.name)
    )
    if not shared or not current.rows:
        fetched, end = evaluate_operand(client, operand, projection, at_ms)
        return current.left_join(fetched), end

    bindings = current.project(shared).distinct()
    binding_rows = [row for row in bindings.rows if None not in row]
    fetched = Relation(projection, partitions=max(1, len(operand.sources)))
    now = at_ms
    mark = client.metrics.mark()
    with client.tracer.span(
        "bound_join",
        t0=at_ms,
        bindings=len(binding_rows),
        block_size=block_size,
        optional=True,
        endpoints=list(operand.sources),
    ) as span:
        for start in range(0, len(binding_rows), block_size):
            block = binding_rows[start:start + block_size]
            query = operand.to_select(projection, values=ValuesPattern(shared, block))
            block_end = now
            for endpoint in operand.sources:
                result, end = client.select(endpoint, query, now, kind=metrics_module.BOUND)
                block_end = max(block_end, end)
                fetched.rows.extend(result.rows)
            now = block_end
            client.registry.inc("bound_join_blocks_total", engine=client.engine)
        span.set(
            rows=len(fetched), requests=client.metrics.requests_since(mark)
        ).end(now)
    return current.left_join(fetched), now
