"""FedX re-implementation (Schwarte et al., ISWC 2011).

The index-free baseline the paper compares against most.  Pipeline:

1. cached ASK source selection, one probe per triple pattern per endpoint;
2. exclusive groups for patterns with a single (shared) relevant source;
3. variable-counting join order;
4. left-deep execution: first operand evaluated unbound, every further
   operand via serial block bound joins (block size 15);
5. OPTIONAL blocks as left bound joins at the end; residual filters and
   solution modifiers at the mediator.

FedX cannot group patterns whose (identical) schema answers live at
several endpoints — the situation of the paper's Sec II experiment —
so such queries degrade to one-pattern-at-a-time bound joins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.bound_join import DEFAULT_BLOCK_SIZE, bound_join, evaluate_operand
from repro.baselines.operands import Operand, build_operands, order_operands
from repro.endpoint.client import FederationClient
from repro.exceptions import MemoryLimitError
from repro.planning.base_engine import FederatedEngine
from repro.planning.normalize import Branch, NormalizedQuery
from repro.planning.source_selection import SourceSelection, select_sources
from repro.rdf.terms import Variable
from repro.relational.filters import make_filter_predicate
from repro.relational.relation import Relation
from repro.sparql.ast import Expression, VarExpr


@dataclass
class FedXConfig:
    block_size: int = DEFAULT_BLOCK_SIZE
    max_mediator_rows: int | None = 2_000_000


class FedXEngine(FederatedEngine):
    """Index-free federation with exclusive groups and bound joins."""

    name = "FedX"

    def __init__(self, federation, network_config=None, caches=None,
                 timeout_ms=None, config: FedXConfig | None = None):
        from repro.planning.base_engine import DEFAULT_TIMEOUT_MS

        super().__init__(
            federation,
            network_config,
            caches,
            timeout_ms if timeout_ms is not None else DEFAULT_TIMEOUT_MS,
        )
        self.config = config or FedXConfig()

    # ----------------------------------------------------------- hooks

    def _prune_sources(self, client: FederationClient, branch: Branch,
                       selection: SourceSelection, at_ms: float) -> float:
        """Source-selection refinement hook (overridden by HiBISCuS)."""
        return at_ms

    # --------------------------------------------------------- pipeline

    def _execute_normalized(
        self, client: FederationClient, normalized: NormalizedQuery
    ) -> tuple[Relation, float]:
        union_relation: Relation | None = None
        end_ms = 0.0
        with self._mediator_runtime(client, self.config.max_mediator_rows):
            for branch in normalized.branches:
                relation, branch_end = self._execute_branch(client, branch, normalized)
                end_ms = max(end_ms, branch_end)
                union_relation = relation if union_relation is None else union_relation.union(relation)
        assert union_relation is not None
        return union_relation, end_ms

    def _execute_branch(
        self,
        client: FederationClient,
        branch: Branch,
        normalized: NormalizedQuery,
    ) -> tuple[Relation, float]:
        now = 0.0
        all_patterns = list(branch.all_patterns())
        mark = client.metrics.mark()
        with client.tracer.span("source_selection", t0=0.0) as span:
            selection, now = select_sources(client, all_patterns, now)
            now = self._prune_sources(client, branch, selection, now)
            span.set(
                patterns=len(all_patterns),
                requests=client.metrics.requests_since(mark),
            ).end(now)
        client.metrics.add_phase("source_selection", now)

        if any(not selection.relevant(pattern) for pattern in branch.patterns):
            return Relation(tuple(normalized.projected_variables())), now

        operands, residue = build_operands(
            list(branch.patterns), selection, branch.filters
        )
        ordered = order_operands(operands)
        projection = self._projection(branch, normalized, residue)

        execution_start = now
        # FedX cuts query execution short once the first LIMIT results
        # are obtained (the paper credits exactly this for FedX winning
        # C4).  Safe only for plain LIMIT: no ORDER BY, no DISTINCT, no
        # OPTIONAL blocks, and a single branch.
        stop_after: int | None = None
        if (
            normalized.limit is not None
            and not normalized.order_by
            and not normalized.distinct
            and not branch.optionals
            and len(normalized.branches) == 1
        ):
            stop_after = normalized.limit + normalized.offset

        relation: Relation | None = None
        if stop_after is not None and len(ordered) > 1:
            relation, now = self._pipelined_limit(
                client, ordered, projection, now, stop_after
            )
        else:
            for index, operand in enumerate(ordered):
                operand_projection = tuple(
                    sorted(operand.variables() & projection, key=lambda v: v.name)
                )
                is_last = index == len(ordered) - 1
                if relation is None:
                    relation, now = evaluate_operand(client, operand, operand_projection, now)
                else:
                    relation, now = bound_join(
                        client, relation, operand, operand_projection, now,
                        block_size=self.config.block_size,
                        stop_after_rows=stop_after if is_last else None,
                    )
                self._guard_rows(client, relation)
                if not relation.rows:
                    break

        assert relation is not None  # normalize() guarantees >= 1 pattern
        # OPTIONAL blocks: left bound joins, one block at a time.
        if relation.rows:
            for index, block in enumerate(branch.optionals):
                if any(not selection.relevant(pattern) for pattern in block.patterns):
                    continue
                block_operands, block_residue = build_operands(
                    list(block.patterns), selection, block.filters, optional_group=index
                )
                optional_relation: Relation | None = None
                for operand in order_operands(block_operands):
                    operand_projection = tuple(
                        sorted(
                            operand.variables() & (projection | set(relation.vars)),
                            key=lambda v: v.name,
                        )
                    )
                    if optional_relation is None:
                        seed = relation
                        optional_relation, now = self._fetch_optional_seed(
                            client, seed, operand, operand_projection, now
                        )
                    else:
                        optional_relation, now = bound_join(
                            client, optional_relation, operand, operand_projection, now,
                            block_size=self.config.block_size,
                        )
                    self._guard_rows(client, optional_relation)
                if optional_relation is not None:
                    for expression in block_residue:
                        optional_relation = optional_relation.filter(
                            make_filter_predicate(expression)
                        )
                    relation = relation.left_join(optional_relation)
                    self._guard_rows(client, relation)

        for expression in residue:
            relation = relation.filter(make_filter_predicate(expression))
        client.metrics.add_phase("execution", now - execution_start)
        client.metrics.mediator_rows = max(client.metrics.mediator_rows, len(relation))
        return relation, now

    def _pipelined_limit(
        self,
        client: FederationClient,
        ordered: list[Operand],
        projection: set[Variable],
        now: float,
        stop_after: int,
    ) -> tuple[Relation, float]:
        """FedX's first-results cut-off: push chunks of the first
        operand's result through the whole bound-join pipeline and stop
        as soon as ``stop_after`` final rows exist."""
        first = ordered[0]
        first_projection = tuple(
            sorted(first.variables() & projection, key=lambda v: v.name)
        )
        seed, now = evaluate_operand(client, first, first_projection, now)
        self._guard_rows(client, seed)

        final: Relation | None = None
        chunk_size = max(self.config.block_size, 1)
        for start in range(0, len(seed.rows), chunk_size):
            # Columnar slice: no decode/re-encode of the chunk's rows.
            piped = seed.limit(chunk_size, offset=start)
            for operand in ordered[1:]:
                operand_projection = tuple(
                    sorted(operand.variables() & projection, key=lambda v: v.name)
                )
                piped, now = bound_join(
                    client, piped, operand, operand_projection, now,
                    block_size=self.config.block_size,
                )
                if not piped.rows:
                    break
            if piped.rows:
                final = piped if final is None else final.union(piped)
                self._guard_rows(client, final)
                if len(final) >= stop_after:
                    break
        if final is None:
            out_vars = tuple(sorted(projection, key=lambda v: v.name))
            final = Relation(out_vars)
        return final, now

    def _fetch_optional_seed(
        self,
        client: FederationClient,
        base: Relation,
        operand: Operand,
        projection: tuple[Variable, ...],
        now: float,
    ) -> tuple[Relation, float]:
        """First operand of an OPTIONAL block: bound by the base relation."""
        shared = tuple(
            sorted(set(base.vars) & operand.variables(), key=lambda v: v.name)
        )
        if not shared:
            return evaluate_operand(client, operand, projection, now)
        # Bind against the base but return only the block's own relation,
        # so subsequent block operands chain off it.
        joined, end = bound_join(
            client,
            base.project(shared).distinct(),
            operand,
            projection,
            now,
            block_size=self.config.block_size,
        )
        return joined, end

    def _projection(
        self,
        branch: Branch,
        normalized: NormalizedQuery,
        residue: list[Expression],
    ) -> set[Variable]:
        needed = set(normalized.projected_variables())
        for expression in residue:
            needed |= expression.variables()
        for condition in normalized.order_by:
            if isinstance(condition.expression, VarExpr):
                needed.add(condition.expression.variable)
        # Join variables must be carried through the pipeline.
        counts: dict[Variable, int] = {}
        for pattern in branch.all_patterns():
            for variable in pattern.variables():
                counts[variable] = counts.get(variable, 0) + 1
        needed |= {variable for variable, count in counts.items() if count >= 2}
        for block in branch.optionals:
            for expression in block.filters:
                needed |= expression.variables()
        return needed

    def _guard_rows(self, client: FederationClient, relation: Relation) -> None:
        limit = self.config.max_mediator_rows
        if limit is not None and len(relation) > limit:
            client.metrics.status = "oom"
            raise MemoryLimitError(
                f"mediator intermediate results exceeded {limit} rows", rows=len(relation)
            )
