"""SPLENDID re-implementation (Görlitz & Staab, COLD 2011).

Index-based baseline:

* **Source selection** reads the VoID index (free — no remote probes)
  for predicate-bound patterns and falls back to ASK probes when a
  pattern has a concrete subject or object (SPLENDID refines candidate
  sources for constants with ASKs).
* **Planning** orders operands by estimated cardinality and, at every
  join step, chooses between a **hash join** (fetch the operand fully,
  in parallel, and join at the mediator) and a **bind join** (ship each
  left binding individually — SPLENDID's bind join predates FedX's
  block trick, hence one request per binding).  The choice compares
  estimated shipped rows against estimated request overhead.
* Exclusive single-source groups are kept together, as SPLENDID's
  access plans do.

The per-binding bind join and index-driven estimates give SPLENDID its
paper-visible profile: competitive on selective queries, frequent
timeouts on large intermediate results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.bound_join import bound_join, evaluate_operand
from repro.baselines.operands import Operand, build_operands
from repro.baselines.void_index import VoidIndex, build_void_index
from repro.endpoint.client import FederationClient
from repro.exceptions import MemoryLimitError
from repro.planning.base_engine import DEFAULT_TIMEOUT_MS, FederatedEngine
from repro.planning.normalize import Branch, NormalizedQuery
from repro.planning.source_selection import SourceSelection
from repro.rdf.terms import Variable
from repro.rdf.triple import TriplePattern
from repro.relational.filters import make_filter_predicate
from repro.relational.relation import Relation
from repro.sparql.ast import Expression, VarExpr


@dataclass
class SplendidConfig:
    #: SPLENDID ships bindings one at a time (no block trick).
    bind_join_block_size: int = 1
    #: Estimated virtual cost units of one remote request, used by the
    #: hash-vs-bind decision.
    request_cost_units: float = 40.0
    max_mediator_rows: int | None = 2_000_000


class SplendidEngine(FederatedEngine):
    """Index-based federation with hash-join / bind-join planning."""

    name = "SPLENDID"
    requires_preprocessing = True

    def __init__(self, federation, network_config=None, caches=None,
                 timeout_ms=None, config: SplendidConfig | None = None):
        super().__init__(
            federation,
            network_config,
            caches,
            timeout_ms if timeout_ms is not None else DEFAULT_TIMEOUT_MS,
        )
        self.config = config or SplendidConfig()
        start = time.perf_counter()
        self.index: VoidIndex = build_void_index(federation)
        self.stats.preprocessing_ms = (time.perf_counter() - start) * 1000.0

    # ------------------------------------------------------ source selection

    def _select_sources(
        self, client: FederationClient, patterns: list[TriplePattern], at_ms: float
    ) -> tuple[SourceSelection, float]:
        selection = SourceSelection()
        names = client.federation.names()
        finish = at_ms
        for pattern in patterns:
            if pattern in selection.sources:
                continue
            candidates = self.index.candidate_sources(pattern, names)
            has_constant = not isinstance(pattern.subject, Variable) or not isinstance(
                pattern.object, Variable
            )
            if has_constant and len(candidates) > 1:
                refined = []
                for name in candidates:
                    answer, end = client.ask(name, pattern, at_ms)
                    finish = max(finish, end)
                    if answer:
                        refined.append(name)
                candidates = refined
            selection.sources[pattern] = tuple(candidates)
        return selection, finish

    # --------------------------------------------------------------- engine

    def _execute_normalized(
        self, client: FederationClient, normalized: NormalizedQuery
    ) -> tuple[Relation, float]:
        union_relation: Relation | None = None
        end_ms = 0.0
        with self._mediator_runtime(client, self.config.max_mediator_rows):
            for branch in normalized.branches:
                relation, branch_end = self._execute_branch(client, branch, normalized)
                end_ms = max(end_ms, branch_end)
                union_relation = relation if union_relation is None else union_relation.union(relation)
        assert union_relation is not None
        return union_relation, end_ms

    def _execute_branch(
        self,
        client: FederationClient,
        branch: Branch,
        normalized: NormalizedQuery,
    ) -> tuple[Relation, float]:
        now = 0.0
        all_patterns = list(branch.all_patterns())
        mark = client.metrics.mark()
        with client.tracer.span("source_selection", t0=0.0, index="void") as span:
            selection, now = self._select_sources(client, all_patterns, now)
            span.set(
                patterns=len(all_patterns),
                requests=client.metrics.requests_since(mark),
            ).end(now)
        client.metrics.add_phase("source_selection", now)

        if any(not selection.relevant(pattern) for pattern in branch.patterns):
            return Relation(tuple(normalized.projected_variables())), now

        operands, residue = build_operands(list(branch.patterns), selection, branch.filters)
        ordered = self._order_by_estimate(operands, selection)
        projection = self._projection(branch, normalized, residue)

        execution_start = now
        relation: Relation | None = None
        for operand in ordered:
            operand_projection = tuple(
                sorted(operand.variables() & projection, key=lambda v: v.name)
            )
            estimate = self._estimate_operand(operand)
            if relation is None:
                relation, now = evaluate_operand(
                    client, operand, operand_projection, now, estimated_rows=estimate
                )
            else:
                use_bind = self._prefer_bind_join(relation, operand, estimate)
                if use_bind:
                    relation, now = bound_join(
                        client, relation, operand, operand_projection, now,
                        block_size=self.config.bind_join_block_size,
                        estimated_rows=estimate,
                    )
                else:
                    fetched, now = evaluate_operand(
                        client, operand, operand_projection, now, estimated_rows=estimate
                    )
                    relation = relation.join(fetched)
            self._guard_rows(client, relation)
            if not relation.rows:
                break

        assert relation is not None
        if relation.rows:
            # OPTIONAL blocks: the whole block must match as a unit —
            # build its relation first, then a single left join.
            for block in branch.optionals:
                if any(not selection.relevant(pattern) for pattern in block.patterns):
                    continue
                block_operands, block_residue = build_operands(
                    list(block.patterns), selection, block.filters
                )
                optional_relation: Relation | None = None
                for operand in self._order_by_estimate(block_operands, selection):
                    operand_projection = tuple(
                        sorted(
                            operand.variables() & (projection | set(relation.vars)),
                            key=lambda v: v.name,
                        )
                    )
                    if optional_relation is None:
                        seed = relation.project(
                            tuple(
                                sorted(
                                    set(relation.vars) & operand.variables(),
                                    key=lambda v: v.name,
                                )
                            )
                        ).distinct()
                        if seed.vars:
                            optional_relation, now = bound_join(
                                client, seed, operand, operand_projection, now,
                                block_size=self.config.bind_join_block_size,
                            )
                        else:
                            optional_relation, now = evaluate_operand(
                                client, operand, operand_projection, now
                            )
                    else:
                        optional_relation, now = bound_join(
                            client, optional_relation, operand, operand_projection, now,
                            block_size=self.config.bind_join_block_size,
                        )
                    self._guard_rows(client, optional_relation)
                if optional_relation is not None:
                    for expression in block_residue:
                        optional_relation = optional_relation.filter(
                            make_filter_predicate(expression)
                        )
                    relation = relation.left_join(optional_relation)
                    self._guard_rows(client, relation)

        for expression in residue:
            relation = relation.filter(make_filter_predicate(expression))
        client.metrics.add_phase("execution", now - execution_start)
        client.metrics.mediator_rows = max(client.metrics.mediator_rows, len(relation))
        return relation, now

    # -------------------------------------------------------------- helpers

    def _estimate_operand(self, operand: Operand) -> float:
        return min(
            self.index.estimate(pattern, operand.sources) for pattern in operand.patterns
        )

    def _order_by_estimate(
        self, operands: list[Operand], selection: SourceSelection
    ) -> list[Operand]:
        """Cardinality-ordered, connectivity-aware greedy order."""
        remaining = list(operands)
        ordered: list[Operand] = []
        bound: set[Variable] = set()
        while remaining:
            def rank(operand: Operand):
                connected = bool(operand.variables() & bound) or not bound
                return (0 if connected else 1, self._estimate_operand(operand))

            best = min(remaining, key=rank)
            remaining.remove(best)
            ordered.append(best)
            bound |= best.variables()
        return ordered

    def _prefer_bind_join(
        self, relation: Relation, operand: Operand, estimate: float
    ) -> bool:
        """Hash-vs-bind decision from estimated shipped work."""
        bind_cost = (
            len(relation)
            / max(1, self.config.bind_join_block_size)
            * self.config.request_cost_units
            * max(1, len(operand.sources))
        )
        hash_cost = estimate + self.config.request_cost_units * max(1, len(operand.sources))
        return bind_cost < hash_cost

    def _projection(self, branch: Branch, normalized: NormalizedQuery,
                    residue: list[Expression]) -> set[Variable]:
        needed = set(normalized.projected_variables())
        for expression in residue:
            needed |= expression.variables()
        for condition in normalized.order_by:
            if isinstance(condition.expression, VarExpr):
                needed.add(condition.expression.variable)
        counts: dict[Variable, int] = {}
        for pattern in branch.all_patterns():
            for variable in pattern.variables():
                counts[variable] = counts.get(variable, 0) + 1
        needed |= {variable for variable, count in counts.items() if count >= 2}
        for block in branch.optionals:
            for expression in block.filters:
                needed |= expression.variables()
        return needed

    def _guard_rows(self, client: FederationClient, relation: Relation) -> None:
        limit = self.config.max_mediator_rows
        if limit is not None and len(relation) > limit:
            client.metrics.status = "oom"
            raise MemoryLimitError(
                f"mediator intermediate results exceeded {limit} rows", rows=len(relation)
            )
