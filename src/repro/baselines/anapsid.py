"""ANAPSID-style adaptive engine (Acosta et al., ISWC 2011).

The paper's related work contrasts Lusail with ANAPSID, an *adaptive*
index-based federation engine: it keeps a catalog of endpoint
capabilities (predicate lists), dispatches subqueries to all relevant
endpoints at once, and routes tuples through non-blocking join
operators as they arrive, adapting the join order to endpoint delivery
rates rather than fixing it at compile time.

This reproduction keeps the defining traits in the virtual-time model:

* **catalog-based source selection** — predicate lookups from the same
  VoID-style index SPLENDID builds (preprocessing cost applies);
* **fully parallel dispatch** — every operand is evaluated unbound at
  all its endpoints simultaneously (no bound joins at all);
* **adaptive join routing** — operand results are joined in the order
  their (virtual) transfers complete, so fast endpoints are consumed
  first; connected operands join as soon as both sides have arrived.

The trade-off this reproduces: excellent parallelism and few requests,
but *every* operand's full extent crosses the network — on unselective
patterns ANAPSID ships far more data than Lusail's delayed bound joins,
which is why the survey the paper cites ranks FedX/Lusail-style systems
ahead on most workloads.

ANAPSID is not part of the paper's evaluation figures; it is included
here as an extra baseline (see ``benchmarks/bench_extra_baseline.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.operands import Operand, build_operands
from repro.baselines.void_index import VoidIndex, build_void_index
from repro.endpoint.client import FederationClient
from repro.exceptions import MemoryLimitError
from repro.planning.base_engine import DEFAULT_TIMEOUT_MS, FederatedEngine
from repro.planning.normalize import Branch, NormalizedQuery
from repro.planning.source_selection import SourceSelection
from repro.rdf.terms import Variable
from repro.relational.filters import make_filter_predicate
from repro.relational.relation import Relation
from repro.sparql.ast import Expression, VarExpr


@dataclass
class AnapsidConfig:
    max_mediator_rows: int | None = 2_000_000


class AnapsidEngine(FederatedEngine):
    """Adaptive, catalog-based federation with fully parallel dispatch."""

    name = "ANAPSID"
    requires_preprocessing = True

    def __init__(self, federation, network_config=None, caches=None,
                 timeout_ms=None, config: AnapsidConfig | None = None):
        super().__init__(
            federation,
            network_config,
            caches,
            timeout_ms if timeout_ms is not None else DEFAULT_TIMEOUT_MS,
        )
        self.config = config or AnapsidConfig()
        start = time.perf_counter()
        self.index: VoidIndex = build_void_index(federation)
        self.stats.preprocessing_ms = (time.perf_counter() - start) * 1000.0

    # ------------------------------------------------------ source selection

    def _select_sources(
        self, client: FederationClient, patterns, at_ms: float
    ) -> tuple[SourceSelection, float]:
        """Catalog lookups only — ANAPSID keeps the capability list local."""
        selection = SourceSelection()
        names = client.federation.names()
        for pattern in patterns:
            if pattern not in selection.sources:
                selection.sources[pattern] = tuple(
                    self.index.candidate_sources(pattern, names)
                )
        return selection, at_ms

    # --------------------------------------------------------------- engine

    def _execute_normalized(
        self, client: FederationClient, normalized: NormalizedQuery
    ) -> tuple[Relation, float]:
        union_relation: Relation | None = None
        end_ms = 0.0
        with self._mediator_runtime(client, self.config.max_mediator_rows):
            for branch in normalized.branches:
                relation, branch_end = self._execute_branch(client, branch, normalized)
                end_ms = max(end_ms, branch_end)
                union_relation = relation if union_relation is None else union_relation.union(relation)
        assert union_relation is not None
        return union_relation, end_ms

    def _execute_branch(
        self,
        client: FederationClient,
        branch: Branch,
        normalized: NormalizedQuery,
    ) -> tuple[Relation, float]:
        with client.tracer.span("source_selection", t0=0.0, index="catalog") as span:
            selection, now = self._select_sources(client, list(branch.all_patterns()), 0.0)
            span.set(requests=0).end(now)
        client.metrics.add_phase("source_selection", now)

        if any(not selection.relevant(pattern) for pattern in branch.patterns):
            return Relation(tuple(normalized.projected_variables())), now

        operands, residue = build_operands(list(branch.patterns), selection, branch.filters)
        projection = self._projection(branch, normalized, residue)

        # Fully parallel dispatch: every operand to every endpoint, now.
        arrivals: list[tuple[float, Relation]] = []
        dispatch_at = now
        mark = client.metrics.mark()
        with client.tracer.span(
            "parallel_dispatch", t0=dispatch_at, operands=len(operands)
        ) as dispatch_span:
            dispatch_end = dispatch_at
            for operand in operands:
                operand_projection = tuple(
                    sorted(operand.variables() & projection, key=lambda v: v.name)
                )
                query = operand.to_select(operand_projection)
                relation = Relation(operand_projection, partitions=max(1, len(operand.sources)))
                completed = dispatch_at
                with client.tracer.span(
                    "operand", t0=dispatch_at, endpoints=list(operand.sources)
                ) as span:
                    for endpoint in operand.sources:
                        result, end = client.select(endpoint, query, dispatch_at)
                        completed = max(completed, end)
                        relation.rows.extend(result.rows)
                    span.set(rows=len(relation)).end(completed)
                dispatch_end = max(dispatch_end, completed)
                self._guard_rows(client, relation)
                arrivals.append((completed, relation))
            dispatch_span.set(
                rows=sum(len(relation) for __, relation in arrivals),
                requests=client.metrics.requests_since(mark),
            ).end(dispatch_end)

        # Adaptive routing: join in arrival order, preferring connected
        # inputs; a relation only joins once both sides have arrived, so
        # virtual time advances to the later arrival.
        arrivals.sort(key=lambda item: item[0])
        current: Relation | None = None
        current_ready = now
        pending = list(arrivals)
        while pending:
            index = next(
                (
                    i
                    for i, (__, relation) in enumerate(pending)
                    if current is None or set(relation.vars) & set(current.vars)
                ),
                0,
            )
            arrived_at, relation = pending.pop(index)
            if current is None:
                current, current_ready = relation, arrived_at
            else:
                current = current.join(relation)
                current_ready = max(current_ready, arrived_at)
                self._guard_rows(client, current)
            if current is not None and not current.rows:
                break
        now = max(now, current_ready)

        assert current is not None
        # OPTIONAL blocks: dispatched in parallel too, left-joined last.
        for block in branch.optionals:
            if any(not selection.relevant(pattern) for pattern in block.patterns):
                continue
            block_operands, block_residue = build_operands(
                list(block.patterns), selection, block.filters
            )
            optional_relation: Relation | None = None
            for operand in block_operands:
                operand_projection = tuple(
                    sorted(
                        operand.variables() & (projection | set(current.vars)),
                        key=lambda v: v.name,
                    )
                )
                query = operand.to_select(operand_projection)
                fetched = Relation(operand_projection, partitions=max(1, len(operand.sources)))
                for endpoint in operand.sources:
                    result, end = client.select(endpoint, query, now)
                    now = max(now, end)
                    fetched.rows.extend(result.rows)
                optional_relation = (
                    fetched if optional_relation is None else optional_relation.join(fetched)
                )
                self._guard_rows(client, optional_relation)
            if optional_relation is not None:
                for expression in block_residue:
                    optional_relation = optional_relation.filter(
                        make_filter_predicate(expression)
                    )
                current = current.left_join(optional_relation)
                self._guard_rows(client, current)

        for expression in residue:
            current = current.filter(make_filter_predicate(expression))
        client.metrics.add_phase("execution", now)
        client.metrics.mediator_rows = max(client.metrics.mediator_rows, len(current))
        return current, now

    def _projection(self, branch: Branch, normalized: NormalizedQuery,
                    residue: list[Expression]) -> set[Variable]:
        needed = set(normalized.projected_variables())
        for expression in residue:
            needed |= expression.variables()
        for condition in normalized.order_by:
            if isinstance(condition.expression, VarExpr):
                needed.add(condition.expression.variable)
        counts: dict[Variable, int] = {}
        for pattern in branch.all_patterns():
            for variable in pattern.variables():
                counts[variable] = counts.get(variable, 0) + 1
        needed |= {variable for variable, count in counts.items() if count >= 2}
        for block in branch.optionals:
            for expression in block.filters:
                needed |= expression.variables()
        return needed

    def _guard_rows(self, client: FederationClient, relation: Relation) -> None:
        limit = self.config.max_mediator_rows
        if limit is not None and len(relation) > limit:
            client.metrics.status = "oom"
            raise MemoryLimitError(
                f"mediator intermediate results exceeded {limit} rows", rows=len(relation)
            )
