"""VoID-style statistics index for SPLENDID.

SPLENDID (Görlitz & Staab, COLD 2011) relies on precomputed VoID
descriptions of every endpoint: total triple counts, per-predicate triple
counts, and distinct subject/object counts per predicate.  The index
drives both source selection (predicate lookup instead of ASK probes)
and cardinality estimation for join planning.

Building the index scans each endpoint's data — the preprocessing cost
the paper contrasts with the index-free engines ("SPLENDID needs 25 and
3,513 seconds to pre-process QFed and LargeRDFBench").  The per-predicate
distinct subject/object counts read here are O(1) lookups: the encoded
:class:`~repro.store.TripleStore` maintains them incrementally on
add/remove rather than scanning its indexes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.endpoint.federation import Federation
from repro.rdf.terms import Term, Variable
from repro.rdf.triple import TriplePattern


@dataclass
class EndpointVoid:
    """VoID statistics for one endpoint."""

    total_triples: int = 0
    predicate_counts: dict[Term, int] = field(default_factory=dict)
    distinct_subjects: dict[Term, int] = field(default_factory=dict)
    distinct_objects: dict[Term, int] = field(default_factory=dict)

    def has_predicate(self, predicate: Term) -> bool:
        return self.predicate_counts.get(predicate, 0) > 0

    def estimate(self, pattern: TriplePattern) -> float:
        """Estimated cardinality of a pattern at this endpoint."""
        predicate = pattern.predicate
        if isinstance(predicate, Variable):
            count = float(self.total_triples)
            subjects = max(1.0, float(sum(self.distinct_subjects.values()) or 1))
            objects = max(1.0, float(sum(self.distinct_objects.values()) or 1))
        else:
            count = float(self.predicate_counts.get(predicate, 0))
            subjects = max(1.0, float(self.distinct_subjects.get(predicate, 1)))
            objects = max(1.0, float(self.distinct_objects.get(predicate, 1)))
        if count == 0.0:
            return 0.0
        if not isinstance(pattern.subject, Variable):
            count /= subjects
        if not isinstance(pattern.object, Variable):
            count /= objects
        return max(count, 0.0)


@dataclass
class VoidIndex:
    """The federation-wide index plus its construction cost."""

    endpoints: dict[str, EndpointVoid] = field(default_factory=dict)
    build_ms: float = 0.0
    triples_scanned: int = 0

    def candidate_sources(self, pattern: TriplePattern, names: list[str]) -> list[str]:
        predicate = pattern.predicate
        if isinstance(predicate, Variable):
            return list(names)
        return [
            name
            for name in names
            if name in self.endpoints and self.endpoints[name].has_predicate(predicate)
        ]

    def estimate(self, pattern: TriplePattern, sources: tuple[str, ...]) -> float:
        return sum(
            self.endpoints[name].estimate(pattern)
            for name in sources
            if name in self.endpoints
        )


def build_void_index(federation: Federation) -> VoidIndex:
    """Scan every endpoint and build its VoID description."""
    start = time.perf_counter()
    index = VoidIndex()
    for endpoint in federation:
        void = EndpointVoid(total_triples=len(endpoint.store))
        for predicate in endpoint.store.predicates():
            void.predicate_counts[predicate] = endpoint.store.predicate_count(predicate)
            void.distinct_subjects[predicate] = endpoint.store.distinct_subjects(predicate)
            void.distinct_objects[predicate] = endpoint.store.distinct_objects(predicate)
        index.endpoints[endpoint.name] = void
        index.triples_scanned += len(endpoint.store)
    index.build_ms = (time.perf_counter() - start) * 1000.0
    return index
