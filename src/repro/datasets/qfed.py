"""QFed-style federated life-science benchmark (Rakhmawati et al. 2014).

Four interlinked datasets, one endpoint each, mirroring QFed's real
sources:

* **Diseasome** — diseases with names and ``possibleDrug`` links into
  DrugBank;
* **DrugBank** — drugs with generic names, CAS numbers, and ``target``
  links back to Diseasome diseases;
* **DailyMed** — marketed medicines with ``genericMedicine`` links into
  DrugBank and a **big literal** ``fullText`` field (the package insert)
  that drives QFed's "big literal object" query variants;
* **Sider** — side-effect records with ``drug`` links into DrugBank.

The query family follows QFed's naming: ``C2P2`` (two classes, two
cross-dataset predicates) with suffixes ``F`` (high-selectivity FILTER),
``B`` (big literal retrieval), ``O`` (OPTIONAL block), and their
combinations — the eight workloads of the paper's Fig 11 — plus the
``Drug`` query used in the Sec II motivation experiment (Fig 3).
"""

from __future__ import annotations

import random

from repro.endpoint.endpoint import Endpoint
from repro.endpoint.federation import Federation
from repro.net import regions as regions_module
from repro.rdf.namespaces import Namespace, RDF_TYPE
from repro.rdf.terms import Literal
from repro.rdf.triple import Triple

DISE = Namespace("http://diseasome.example.org/resource/")
DB = Namespace("http://drugbank.example.org/resource/")
DM = Namespace("http://dailymed.example.org/resource/")
SID = Namespace("http://sider.example.org/resource/")

QFED_PREFIXES = (
    "PREFIX dise: <http://diseasome.example.org/resource/>\n"
    "PREFIX db: <http://drugbank.example.org/resource/>\n"
    "PREFIX dm: <http://dailymed.example.org/resource/>\n"
    "PREFIX sid: <http://sider.example.org/resource/>\n"
)

_DISEASE_NAMES = [
    "Asthma",
    "Diabetes",
    "Hypertension",
    "Migraine",
    "Epilepsy",
    "Anemia",
    "Arthritis",
    "Psoriasis",
    "Glaucoma",
    "Bronchitis",
]


def _big_literal(rng: random.Random, drug_index: int, words: int) -> Literal:
    """The DailyMed package-insert text: a multi-kilobyte literal."""
    vocabulary = (
        "indication dosage administration contraindication warning adverse "
        "reaction interaction pharmacology clinical overdose storage"
    ).split()
    text = " ".join(rng.choice(vocabulary) for __ in range(words))
    return Literal(f"Label for drug {drug_index}: {text}")


def build_federation(
    diseases: int = 60,
    drugs: int = 150,
    marketed: int = 120,
    side_effects: int = 200,
    big_literal_words: int = 400,
    drugs_per_disease: int = 3,
    seed: int = 42,
    geo: bool = False,
) -> Federation:
    """Build the four QFed endpoints with deterministic interlinks."""
    rng = random.Random(f"qfed:{seed}")
    regions = (
        regions_module.assign_regions(4) if geo else [regions_module.LOCAL] * 4
    )

    drug_iris = [DB[f"drug{i}"] for i in range(drugs)]
    disease_iris = [DISE[f"disease{i}"] for i in range(diseases)]

    # ---- DrugBank -------------------------------------------------------
    drugbank: list[Triple] = []
    for i, drug in enumerate(drug_iris):
        drugbank.append(Triple(drug, RDF_TYPE, DB.Drug))
        drugbank.append(Triple(drug, DB.genericName, Literal(f"generic-{i}")))
        drugbank.append(Triple(drug, DB.casRegistryNumber, Literal(f"CAS-{1000 + i}")))
        # Each drug targets one disease (an interlink into Diseasome).
        target = disease_iris[i % diseases]
        drugbank.append(Triple(drug, DB.target, target))

    # ---- Diseasome ------------------------------------------------------
    diseasome: list[Triple] = []
    for i, disease in enumerate(disease_iris):
        name = _DISEASE_NAMES[i] if i < len(_DISEASE_NAMES) else f"Condition-{i}"
        diseasome.append(Triple(disease, RDF_TYPE, DISE.Disease))
        diseasome.append(Triple(disease, DISE.name, Literal(name)))
        diseasome.append(Triple(disease, DISE.degree, Literal(str(rng.randrange(1, 9)))))
        # Each disease links to a few possible drugs (interlink to DrugBank).
        for k in range(drugs_per_disease):
            drug = drug_iris[(i * drugs_per_disease + k) % drugs]
            diseasome.append(Triple(disease, DISE.possibleDrug, drug))

    # ---- DailyMed -------------------------------------------------------
    dailymed: list[Triple] = []
    for i in range(marketed):
        medicine = DM[f"medicine{i}"]
        drug = drug_iris[i % drugs]
        dailymed.append(Triple(medicine, RDF_TYPE, DM.MarketedDrug))
        dailymed.append(Triple(medicine, DM.name, Literal(f"brand-{i}")))
        dailymed.append(Triple(medicine, DM.genericMedicine, drug))
        dailymed.append(Triple(medicine, DM.route, Literal("oral" if i % 2 else "iv")))
        dailymed.append(Triple(medicine, DM.fullText, _big_literal(rng, i, big_literal_words)))

    # ---- Sider ----------------------------------------------------------
    sider: list[Triple] = []
    effects = ["nausea", "headache", "dizziness", "fatigue", "rash", "insomnia"]
    for i in range(side_effects):
        record = SID[f"effect{i}"]
        drug = drug_iris[rng.randrange(drugs)]
        sider.append(Triple(record, RDF_TYPE, SID.SideEffect))
        sider.append(Triple(record, SID.drug, drug))
        sider.append(Triple(record, SID.effectName, Literal(rng.choice(effects))))

    federation = Federation()
    for name, triples, region in (
        ("diseasome", diseasome, regions[0]),
        ("drugbank", drugbank, regions[1]),
        ("dailymed", dailymed, regions[2]),
        ("sider", sider, regions[3]),
    ):
        federation.add(Endpoint(name=name, triples=triples, region=region))
    return federation


# --------------------------------------------------------------------------
# The C2P2 query family (paper Fig 11) and the Drug query (paper Fig 3).


def _c2p2(filter_clause: bool, big: bool, optional: bool) -> str:
    lines = [
        "SELECT ?disease ?drug ?medicine"
        + (" ?text" if big else "")
        + (" ?effect" if optional else "")
        + " WHERE {",
        "  ?disease a dise:Disease .",
        "  ?disease dise:possibleDrug ?drug .",
        "  ?drug a db:Drug .",
        "  ?medicine dm:genericMedicine ?drug .",
    ]
    if big:
        lines.append("  ?medicine dm:fullText ?text .")
    if filter_clause:
        lines.append('  ?disease dise:name ?dn . FILTER (?dn = "Asthma")')
    if optional:
        lines.append("  OPTIONAL { ?se sid:drug ?drug . ?se sid:effectName ?effect . }")
    lines.append("}")
    return QFED_PREFIXES + "\n".join(lines)


def queries() -> dict[str, str]:
    """The eight QFed queries of Fig 11 (keyed by the paper's labels)."""
    return {
        "C2P2": _c2p2(filter_clause=False, big=False, optional=False),
        "C2P2F": _c2p2(filter_clause=True, big=False, optional=False),
        "C2P2B": _c2p2(filter_clause=False, big=True, optional=False),
        "C2P2BF": _c2p2(filter_clause=True, big=True, optional=False),
        "C2P2BO": _c2p2(filter_clause=False, big=True, optional=True),
        "C2P2BOF": _c2p2(filter_clause=True, big=True, optional=True),
        "C2P2OF": _c2p2(filter_clause=True, big=False, optional=True),
        "C2P2O": _c2p2(filter_clause=False, big=False, optional=True),
    }


def drug_query() -> str:
    """The QFed Drug query used in the paper's Sec II experiment:
    medicines that target asthma, with optional marketed-drug details."""
    return QFED_PREFIXES + """
SELECT ?drug ?name ?medicine ?route WHERE {
  ?disease a dise:Disease .
  ?disease dise:name "Asthma" .
  ?disease dise:possibleDrug ?drug .
  ?drug db:genericName ?name .
  OPTIONAL {
    ?medicine dm:genericMedicine ?drug .
    ?medicine dm:route ?route .
  }
}
"""
