"""The full LUBM query suite (L1-L14), adapted for a federation.

The paper uses only the four queries of its Sec VI; this module adapts
the complete LUBM workload (Guo, Pan & Heflin 2005) so the engines can
be exercised on the whole benchmark.  Adaptations, as is standard for
systems without OWL inference:

* class hierarchies are replaced by the concrete generated classes
  (e.g. ``Professor`` -> ``FullProfessor``/``AssociateProfessor``);
* inverse/transitive properties are replaced by the asserted ones;
* queries referencing a specific university/department use index 0.

Queries whose semantics collapse without inference (L8, L10-L13 overlap
heavily with others) are kept as close analogs so all fourteen remain
distinct and answerable.
"""

from __future__ import annotations

from repro.datasets.lubm import university_iri

_PREFIX = "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"


def _dept0(university_index: int = 0) -> str:
    return f"http://www.university{university_index}.example.org/department0"


def queries(university_index: int = 0) -> dict[str, str]:
    """All fourteen adapted LUBM queries."""
    univ0 = university_iri(university_index).value
    dept0 = _dept0(university_index)
    return {
        # L1: graduate students taking a specific course.
        "L1": _PREFIX + f"""
SELECT ?x WHERE {{
  ?x a ub:GraduateStudent .
  ?x ub:takesCourse <{dept0}/course0_0> .
}}""",
        # L2: the triangle — students with an undergraduate degree from
        # the university their department belongs to (paper's Q1).
        "L2": _PREFIX + """
SELECT ?x ?y ?z WHERE {
  ?x a ub:GraduateStudent .
  ?y a ub:University .
  ?z a ub:Department .
  ?x ub:memberOf ?z .
  ?z ub:subOrganizationOf ?y .
  ?x ub:undergraduateDegreeFrom ?y .
}""",
        # L3: publications-like: courses taught by a specific professor.
        "L3": _PREFIX + f"""
SELECT ?x WHERE {{
  ?x a ub:GraduateCourse .
  <{dept0}/professor0> ub:teacherOf ?x .
}}""",
        # L4: professors of a department with contact details.
        "L4": _PREFIX + f"""
SELECT ?x ?name ?email WHERE {{
  ?x ub:worksFor <{dept0}> .
  ?x ub:name ?name .
  ?x ub:emailAddress ?email .
}}""",
        # L5: members of a department (students and staff).
        "L5": _PREFIX + f"""
SELECT ?x WHERE {{
  ?x ub:memberOf <{dept0}> .
}}""",
        # L6: all graduate students.
        "L6": _PREFIX + """
SELECT ?x WHERE { ?x a ub:GraduateStudent . }""",
        # L7: courses taken by students advised by a given professor.
        "L7": _PREFIX + f"""
SELECT ?x ?y WHERE {{
  ?x a ub:GraduateStudent .
  ?x ub:advisor <{dept0}/professor0> .
  ?x ub:takesCourse ?y .
}}""",
        # L8: students of departments of a specific university, with email.
        "L8": _PREFIX + f"""
SELECT ?x ?y WHERE {{
  ?x a ub:GraduateStudent .
  ?x ub:memberOf ?y .
  ?y ub:subOrganizationOf <{univ0}> .
}}""",
        # L9: the advisor/course triangle (paper's Q2).
        "L9": _PREFIX + """
SELECT ?x ?y ?z WHERE {
  ?x a ub:GraduateStudent .
  ?y a ub:FullProfessor .
  ?z a ub:GraduateCourse .
  ?x ub:advisor ?y .
  ?y ub:teacherOf ?z .
  ?x ub:takesCourse ?z .
}""",
        # L10: students taking any course of a specific department.
        "L10": _PREFIX + f"""
SELECT ?x ?c WHERE {{
  ?x a ub:UndergraduateStudent .
  ?x ub:memberOf <{dept0}> .
  ?x ub:takesCourse ?c .
}}""",
        # L11: research-group analog — departments of a university.
        "L11": _PREFIX + f"""
SELECT ?x WHERE {{
  ?x a ub:Department .
  ?x ub:subOrganizationOf <{univ0}> .
}}""",
        # L12: department heads of a university.
        "L12": _PREFIX + f"""
SELECT ?x ?y WHERE {{
  ?x ub:headOf ?y .
  ?y a ub:Department .
  ?y ub:subOrganizationOf <{univ0}> .
}}""",
        # L13: alumni — people with a degree from a university (paper Q3).
        "L13": _PREFIX + f"""
SELECT ?x WHERE {{
  ?x a ub:GraduateStudent .
  ?x ub:undergraduateDegreeFrom <{univ0}> .
}}""",
        # L14: all undergraduate students (the classic full scan).
        "L14": _PREFIX + """
SELECT ?x WHERE { ?x a ub:UndergraduateStudent . }""",
    }
