"""Random decentralized federations + random queries for property tests.

The generator produces federations obeying the **decentralized-authority
discipline** the paper's completeness argument rests on (see DESIGN.md):

* every entity has a home endpoint and all its outgoing triples live
  there;
* shared vocabulary (``rdf:type``, data predicates, local link
  predicates) is used only with *local* objects;
* cross-endpoint interlinks use a **per-endpoint link predicate**
  (``ref0``, ``ref1``, ...), as real LOD datasets do (each dataset mints
  its own linking property).  This keeps every remote-reference pattern
  single-source, so LADE's pairwise locality checks are sound for every
  query the random query generator can produce.

Random queries are connected conjunctive patterns (paths and stars) over
this vocabulary, optionally with a type constraint and a FILTER.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.endpoint.endpoint import Endpoint
from repro.endpoint.federation import Federation
from repro.rdf.namespaces import Namespace, RDF_TYPE
from repro.rdf.terms import IRI, Variable, typed_literal
from repro.rdf.triple import Triple, TriplePattern
from repro.sparql.ast import BGP, GroupPattern, SelectQuery

VOCAB = Namespace("http://vocab.example.org/")

CLASSES = [VOCAB[f"Class{i}"] for i in range(3)]
DATA_PREDICATES = [VOCAB[f"data{i}"] for i in range(3)]
LOCAL_LINKS = [VOCAB[f"link{i}"] for i in range(2)]


def remote_link(endpoint_index: int) -> IRI:
    """The interlink predicate minted by one endpoint."""
    return VOCAB[f"ref{endpoint_index}"]


@dataclass(frozen=True)
class FederationShape:
    endpoints: int = 3
    entities_per_endpoint: int = 12
    local_links_per_entity: int = 2
    remote_links_per_entity: int = 1


def build_random_federation(seed: int, shape: FederationShape | None = None) -> Federation:
    """A seeded random federation obeying the authority discipline."""
    shape = shape or FederationShape()
    rng = random.Random(f"randomfed:{seed}")
    entity_iris = [
        [
            IRI(f"http://ep{ep}.example.org/entity{i}")
            for i in range(shape.entities_per_endpoint)
        ]
        for ep in range(shape.endpoints)
    ]

    federation = Federation()
    for ep in range(shape.endpoints):
        triples: list[Triple] = []
        locals_ = entity_iris[ep]
        for i, entity in enumerate(locals_):
            triples.append(Triple(entity, RDF_TYPE, CLASSES[i % len(CLASSES)]))
            for predicate in DATA_PREDICATES:
                if rng.random() < 0.7:
                    triples.append(
                        Triple(entity, predicate, typed_literal(rng.randrange(0, 20)))
                    )
            for __ in range(shape.local_links_per_entity):
                target = rng.choice(locals_)
                triples.append(Triple(entity, rng.choice(LOCAL_LINKS), target))
            if shape.endpoints > 1:
                for __ in range(shape.remote_links_per_entity):
                    other = rng.randrange(shape.endpoints)
                    if other == ep:
                        continue
                    target = rng.choice(entity_iris[other])
                    triples.append(Triple(entity, remote_link(ep), target))
        federation.add(Endpoint(name=f"ep{ep}", triples=triples))
    return federation


def build_random_query(seed: int, federation_endpoints: int, max_patterns: int = 5) -> SelectQuery:
    """A connected conjunctive query over the shared vocabulary."""
    rng = random.Random(f"randomquery:{seed}")
    link_choices = list(LOCAL_LINKS) + [
        remote_link(ep) for ep in range(federation_endpoints)
    ]

    patterns: list[TriplePattern] = []
    variables = [Variable("v0")]
    pattern_count = rng.randrange(2, max_patterns + 1)

    if rng.random() < 0.6:
        patterns.append(TriplePattern(variables[0], RDF_TYPE, rng.choice(CLASSES)))

    frontier = [variables[0]]
    while len(patterns) < pattern_count:
        source = rng.choice(frontier)
        roll = rng.random()
        if roll < 0.4:
            # Data property: ends in a literal-valued variable.
            value_var = Variable(f"v{len(variables)}")
            variables.append(value_var)
            patterns.append(TriplePattern(source, rng.choice(DATA_PREDICATES), value_var))
        elif roll < 0.85:
            # Link to a new entity variable (path growth).
            target = Variable(f"v{len(variables)}")
            variables.append(target)
            patterns.append(TriplePattern(source, rng.choice(link_choices), target))
            frontier.append(target)
        else:
            # Type constraint on an existing frontier variable.
            patterns.append(TriplePattern(source, RDF_TYPE, rng.choice(CLASSES)))

    # Deduplicate while preserving order (random choices can repeat).
    unique: list[TriplePattern] = []
    for pattern in patterns:
        if pattern not in unique:
            unique.append(pattern)

    project = sorted({v for p in unique for v in p.variables()}, key=lambda v: v.name)
    return SelectQuery(where=GroupPattern([BGP(unique)]), select_vars=tuple(project))


def build_random_optional_query(
    seed: int, federation_endpoints: int, max_patterns: int = 4
) -> SelectQuery:
    """A random conjunctive query plus one OPTIONAL block.

    The block extends a variable of the required part with a data
    property or an outgoing link, exercising the engines' left-join
    paths under the same authority discipline.
    """
    from repro.sparql.ast import OptionalPattern

    rng = random.Random(f"randomopt:{seed}")
    base = build_random_query(seed, federation_endpoints, max_patterns)
    base_bgp = base.where.elements[0]
    assert isinstance(base_bgp, BGP)
    base_vars = sorted(
        {v for p in base_bgp.triples for v in p.variables()}, key=lambda v: v.name
    )
    anchor = rng.choice(base_vars)
    extra = Variable("opt0")
    link_choices = list(DATA_PREDICATES) + list(LOCAL_LINKS) + [
        remote_link(ep) for ep in range(federation_endpoints)
    ]
    optional_pattern = TriplePattern(anchor, rng.choice(link_choices), extra)
    where = GroupPattern(
        [base_bgp, OptionalPattern(GroupPattern([BGP([optional_pattern])]))]
    )
    project = tuple(base_vars) + (extra,)
    return SelectQuery(where=where, select_vars=project)
