"""Persist federations to disk as one N-Triples file per endpoint.

Useful for inspecting generated benchmark data and for loading the same
federation into an external triple store.  A small JSON manifest records
endpoint order and regions.
"""

from __future__ import annotations

import json
import pathlib

from repro.endpoint.endpoint import Endpoint
from repro.endpoint.federation import Federation
from repro.rdf import ntriples

MANIFEST_NAME = "federation.json"


def save_federation(federation: Federation, directory: str | pathlib.Path) -> pathlib.Path:
    """Write each endpoint's triples to ``<name>.nt`` plus a manifest."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    manifest = []
    for endpoint in federation:
        filename = f"{endpoint.name}.nt"
        with open(path / filename, "w", encoding="utf-8") as stream:
            count = ntriples.dump(sorted(endpoint.store, key=lambda t: t.n3()), stream)
        manifest.append(
            {
                "name": endpoint.name,
                "region": endpoint.region,
                "file": filename,
                "triples": count,
            }
        )
    with open(path / MANIFEST_NAME, "w", encoding="utf-8") as stream:
        json.dump({"endpoints": manifest}, stream, indent=2)
    return path


def load_federation(directory: str | pathlib.Path) -> Federation:
    """Rebuild a federation saved by :func:`save_federation`."""
    path = pathlib.Path(directory)
    with open(path / MANIFEST_NAME, encoding="utf-8") as stream:
        manifest = json.load(stream)
    federation = Federation()
    for entry in manifest["endpoints"]:
        with open(path / entry["file"], encoding="utf-8") as stream:
            triples = list(ntriples.load(stream))
        federation.add(Endpoint(name=entry["name"], triples=triples, region=entry["region"]))
    return federation
