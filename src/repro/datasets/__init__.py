"""Benchmark dataset generators and query workloads.

* :mod:`repro.datasets.lubm` — LUBM universities (paper Figs 3, 10, 12, 14c)
* :mod:`repro.datasets.qfed` — QFed life sciences (paper Figs 3, 11)
* :mod:`repro.datasets.largerdf` + :mod:`repro.datasets.queries_largerdf`
  — LargeRDFBench-style 13 endpoints (paper Figs 9, 10a, 13, 14a-b)
* :mod:`repro.datasets.bio2rdf` — Bio2RDF-style endpoints (paper Sec VI-D)
* :mod:`repro.datasets.random_federation` — seeded random federations for
  property-based testing
"""

from repro.datasets import (
    bio2rdf,
    io,
    largerdf,
    lubm,
    qfed,
    queries_largerdf,
    queries_lubm,
    random_federation,
)

__all__ = [
    "bio2rdf",
    "io",
    "queries_lubm",
    "largerdf",
    "lubm",
    "qfed",
    "queries_largerdf",
    "random_federation",
]
