"""LargeRDFBench-style federation: 13 heterogeneous endpoints.

Mirrors the structure of LargeRDFBench (Saleem et al.), the paper's main
real-data benchmark: three large LinkedTCGA cancer-genomics endpoints,
a cluster of life-science sources (ChEBI, DrugBank, KEGG, Affymetrix),
a cross-domain hub (DBpedia subset) and satellites linking into it
(New York Times, LinkedMDB, Jamendo, GeoNames, Semantic Web Dog Food).

Relative sizes follow Table I of the paper: the TCGA endpoints dwarf the
rest, GeoNames and DBpedia are mid-sized, SWDF is tiny.  ``scale``
multiplies every entity count.

Interlinks (all IRI references, respecting the decentralized-authority
assumption):

* TCGA methylation/expression results -> TCGA-A patients, Affymetrix genes
* TCGA-A patients -> GeoNames places (hospital location)
* DrugBank -> KEGG (compound), ChEBI (ingredient), DBpedia (sameAs)
* KEGG -> ChEBI (sameAs)
* NYTimes topics -> DBpedia entities (sameAs)
* LinkedMDB films -> DBpedia films (sameAs)
* Jamendo artists -> GeoNames places (based near)
* SWDF authors' affiliations -> DBpedia organisations
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.endpoint.endpoint import Endpoint
from repro.endpoint.federation import Federation
from repro.net import regions as regions_module
from repro.rdf.namespaces import Namespace, OWL_SAMEAS, RDF_TYPE, RDFS_LABEL
from repro.rdf.terms import Literal, typed_literal
from repro.rdf.triple import Triple

TCGAM = Namespace("http://tcga-m.example.org/resource/")
TCGAE = Namespace("http://tcga-e.example.org/resource/")
TCGAA = Namespace("http://tcga-a.example.org/resource/")
CHEBI = Namespace("http://chebi.example.org/resource/")
DBP = Namespace("http://dbpedia.example.org/resource/")
DBPO = Namespace("http://dbpedia.example.org/ontology/")
DRUGB = Namespace("http://drugbank.example.org/largerdf/")
GEO = Namespace("http://geonames.example.org/resource/")
JAM = Namespace("http://jamendo.example.org/resource/")
KEGG = Namespace("http://kegg.example.org/resource/")
MDB = Namespace("http://linkedmdb.example.org/resource/")
NYT = Namespace("http://nytimes.example.org/resource/")
SWDF = Namespace("http://swdf.example.org/resource/")
AFFY = Namespace("http://affymetrix.example.org/resource/")

LARGERDF_PREFIXES = (
    "PREFIX tcgam: <http://tcga-m.example.org/resource/>\n"
    "PREFIX tcgae: <http://tcga-e.example.org/resource/>\n"
    "PREFIX tcgaa: <http://tcga-a.example.org/resource/>\n"
    "PREFIX chebi: <http://chebi.example.org/resource/>\n"
    "PREFIX dbp: <http://dbpedia.example.org/resource/>\n"
    "PREFIX dbpo: <http://dbpedia.example.org/ontology/>\n"
    "PREFIX drugb: <http://drugbank.example.org/largerdf/>\n"
    "PREFIX geo: <http://geonames.example.org/resource/>\n"
    "PREFIX jam: <http://jamendo.example.org/resource/>\n"
    "PREFIX kegg: <http://kegg.example.org/resource/>\n"
    "PREFIX mdb: <http://linkedmdb.example.org/resource/>\n"
    "PREFIX nyt: <http://nytimes.example.org/resource/>\n"
    "PREFIX swdf: <http://swdf.example.org/resource/>\n"
    "PREFIX affy: <http://affymetrix.example.org/resource/>\n"
)

ENDPOINT_NAMES = (
    "tcga-m",
    "tcga-e",
    "tcga-a",
    "chebi",
    "dbpedia",
    "drugbank",
    "geonames",
    "jamendo",
    "kegg",
    "linkedmdb",
    "nytimes",
    "swdogfood",
    "affymetrix",
)

_CANCER_TYPES = ["lung", "breast", "colon", "skin", "prostate", "ovarian"]
_COUNTRIES = ["US", "DE", "FR", "JP", "BR", "IN", "GB"]


@dataclass(frozen=True)
class Scale:
    """Entity counts (multiply by ``factor`` for bigger runs)."""

    patients: int = 60
    results_per_patient_m: int = 20
    results_per_patient_e: int = 16
    genes: int = 80
    drugs: int = 80
    compounds_chebi: int = 90
    compounds_kegg: int = 70
    dbpedia_entities: int = 120
    places: int = 100
    films: int = 60
    artists: int = 50
    topics: int = 60
    papers: int = 30

    def scaled(self, factor: float) -> "Scale":
        def mul(value: int) -> int:
            return max(1, int(value * factor))

        return Scale(
            patients=mul(self.patients),
            results_per_patient_m=self.results_per_patient_m,
            results_per_patient_e=self.results_per_patient_e,
            genes=mul(self.genes),
            drugs=mul(self.drugs),
            compounds_chebi=mul(self.compounds_chebi),
            compounds_kegg=mul(self.compounds_kegg),
            dbpedia_entities=mul(self.dbpedia_entities),
            places=mul(self.places),
            films=mul(self.films),
            artists=mul(self.artists),
            topics=mul(self.topics),
            papers=mul(self.papers),
        )


def build_federation(
    scale: float = 1.0,
    seed: int = 42,
    geo: bool = False,
    hub_scale: float = 1.0,
) -> Federation:
    """Generate all 13 endpoints.

    ``hub_scale`` additionally multiplies the *hub* datasets (GeoNames,
    DBpedia entities, ChEBI, KEGG, NYT topics) without touching the
    query-relevant cores.  Real hubs dwarf what any one query touches
    (GeoNames alone holds 108M triples); a large ``hub_scale`` recreates
    that skew, which is what makes SAPE's delaying pay off (Fig 9).
    """
    sizes = Scale().scaled(scale)
    if hub_scale != 1.0:
        sizes = Scale(
            patients=sizes.patients,
            results_per_patient_m=sizes.results_per_patient_m,
            results_per_patient_e=sizes.results_per_patient_e,
            genes=sizes.genes,
            drugs=sizes.drugs,
            compounds_chebi=max(1, int(sizes.compounds_chebi * hub_scale)),
            compounds_kegg=max(1, int(sizes.compounds_kegg * hub_scale)),
            dbpedia_entities=max(1, int(sizes.dbpedia_entities * hub_scale)),
            places=max(1, int(sizes.places * hub_scale)),
            films=sizes.films,
            artists=sizes.artists,
            topics=max(1, int(sizes.topics * hub_scale)),
            papers=sizes.papers,
        )
    rng = random.Random(f"largerdf:{seed}")
    regions = (
        regions_module.assign_regions(len(ENDPOINT_NAMES))
        if geo
        else [regions_module.LOCAL] * len(ENDPOINT_NAMES)
    )

    patients = [TCGAA[f"patient{i}"] for i in range(sizes.patients)]
    genes = [AFFY[f"gene{i}"] for i in range(sizes.genes)]
    places = [GEO[f"place{i}"] for i in range(sizes.places)]
    dbp_drugs = [DBP[f"Drug_{i}"] for i in range(sizes.drugs)]
    dbp_films = [DBP[f"Film_{i}"] for i in range(sizes.films)]
    chebi_compounds = [CHEBI[f"compound{i}"] for i in range(sizes.compounds_chebi)]
    kegg_compounds = [KEGG[f"C{10000 + i}"] for i in range(sizes.compounds_kegg)]

    # ---- TCGA-A: patient annotations -----------------------------------
    tcga_a: list[Triple] = []
    for i, patient in enumerate(patients):
        tcga_a.append(Triple(patient, RDF_TYPE, TCGAA.Patient))
        tcga_a.append(Triple(patient, TCGAA.barcode, Literal(f"TCGA-{i:04d}")))
        tcga_a.append(Triple(patient, TCGAA.gender, Literal("male" if i % 2 else "female")))
        tcga_a.append(Triple(patient, TCGAA.age, typed_literal(30 + (i * 7) % 50)))
        # i//2 decouples disease from the gender parity so that every
        # (gender, disease) combination occurs.
        tcga_a.append(
            Triple(patient, TCGAA.disease, Literal(_CANCER_TYPES[(i // 2) % len(_CANCER_TYPES)]))
        )
        tcga_a.append(Triple(patient, TCGAA.location, places[i % len(places)]))

    # ---- TCGA-M: methylation results (the biggest endpoint) ------------
    tcga_m: list[Triple] = []
    for i, patient in enumerate(patients):
        for j in range(sizes.results_per_patient_m):
            result = TCGAM[f"methylation{i}_{j}"]
            tcga_m.append(Triple(result, RDF_TYPE, TCGAM.Result))
            tcga_m.append(Triple(result, TCGAM.patient, patient))
            tcga_m.append(Triple(result, TCGAM.gene, genes[(i + j) % len(genes)]))
            tcga_m.append(Triple(result, TCGAM.betaValue, typed_literal(round(rng.random(), 3))))

    # ---- TCGA-E: expression results -------------------------------------
    tcga_e: list[Triple] = []
    for i, patient in enumerate(patients):
        for j in range(sizes.results_per_patient_e):
            result = TCGAE[f"expression{i}_{j}"]
            tcga_e.append(Triple(result, RDF_TYPE, TCGAE.Expression))
            tcga_e.append(Triple(result, TCGAE.patient, patient))
            tcga_e.append(Triple(result, TCGAE.gene, genes[(i * 3 + j) % len(genes)]))
            tcga_e.append(Triple(result, TCGAE.level, typed_literal(rng.randrange(0, 5000))))

    # ---- Affymetrix: probe annotations ----------------------------------
    affymetrix: list[Triple] = []
    for i, gene in enumerate(genes):
        affymetrix.append(Triple(gene, RDF_TYPE, AFFY.Probe))
        affymetrix.append(Triple(gene, AFFY.symbol, Literal(f"GENE{i}")))
        affymetrix.append(Triple(gene, AFFY.chromosome, Literal(str(1 + i % 22))))
        affymetrix.append(Triple(gene, AFFY.organism, Literal("Homo sapiens")))

    # ---- ChEBI -----------------------------------------------------------
    chebi: list[Triple] = []
    for i, compound in enumerate(chebi_compounds):
        chebi.append(Triple(compound, RDF_TYPE, CHEBI.Compound))
        chebi.append(Triple(compound, CHEBI.name, Literal(f"chebi-compound-{i}")))
        chebi.append(Triple(compound, CHEBI.mass, typed_literal(50.0 + i)))
        chebi.append(Triple(compound, CHEBI.status, Literal("checked" if i % 3 else "draft")))

    # ---- KEGG ------------------------------------------------------------
    kegg: list[Triple] = []
    for i, compound in enumerate(kegg_compounds):
        kegg.append(Triple(compound, RDF_TYPE, KEGG.Compound))
        kegg.append(Triple(compound, KEGG.name, Literal(f"kegg-compound-{i}")))
        kegg.append(Triple(compound, KEGG.mass, typed_literal(60.0 + i)))
        kegg.append(Triple(compound, OWL_SAMEAS, chebi_compounds[i % len(chebi_compounds)]))

    # ---- DrugBank ---------------------------------------------------------
    drugbank: list[Triple] = []
    for i in range(sizes.drugs):
        drug = DRUGB[f"drug{i}"]
        drugbank.append(Triple(drug, RDF_TYPE, DRUGB.Drug))
        drugbank.append(Triple(drug, DRUGB.name, Literal(f"drug-{i}")))
        drugbank.append(Triple(drug, DRUGB.casNumber, Literal(f"CAS-{2000 + i}")))
        drugbank.append(Triple(drug, DRUGB.keggCompoundId, kegg_compounds[i % len(kegg_compounds)]))
        drugbank.append(Triple(drug, DRUGB.chebiIngredient, chebi_compounds[i % len(chebi_compounds)]))
        drugbank.append(Triple(drug, OWL_SAMEAS, dbp_drugs[i]))
        drugbank.append(
            Triple(drug, DRUGB.indication, Literal(_CANCER_TYPES[i % len(_CANCER_TYPES)]))
        )

    # ---- DBpedia subset ----------------------------------------------------
    dbpedia: list[Triple] = []
    for i, drug in enumerate(dbp_drugs):
        dbpedia.append(Triple(drug, RDF_TYPE, DBPO.Drug))
        dbpedia.append(Triple(drug, RDFS_LABEL, Literal(f"Drug {i}")))
        dbpedia.append(Triple(drug, DBPO.abstract, Literal(f"Abstract of drug {i} " + "x" * 60)))
    for i, film in enumerate(dbp_films):
        dbpedia.append(Triple(film, RDF_TYPE, DBPO.Film))
        dbpedia.append(Triple(film, RDFS_LABEL, Literal(f"Film {i}")))
        dbpedia.append(Triple(film, DBPO.director, DBP[f"Director_{i % 20}"]))
    for i in range(20):
        director = DBP[f"Director_{i}"]
        dbpedia.append(Triple(director, RDF_TYPE, DBPO.Person))
        dbpedia.append(Triple(director, RDFS_LABEL, Literal(f"Director {i}")))
    for i in range(sizes.dbpedia_entities):
        entity = DBP[f"Entity_{i}"]
        dbpedia.append(Triple(entity, RDF_TYPE, DBPO.Organisation if i % 2 else DBPO.Place))
        dbpedia.append(Triple(entity, RDFS_LABEL, Literal(f"Entity {i}")))

    # ---- GeoNames -----------------------------------------------------------
    geonames: list[Triple] = []
    for i, place in enumerate(places):
        geonames.append(Triple(place, RDF_TYPE, GEO.Feature))
        geonames.append(Triple(place, GEO.name, Literal(f"Place-{i}")))
        geonames.append(Triple(place, GEO.countryCode, Literal(_COUNTRIES[i % len(_COUNTRIES)])))
        geonames.append(Triple(place, GEO.population, typed_literal(1000 * (i + 1))))

    # ---- Jamendo --------------------------------------------------------------
    jamendo: list[Triple] = []
    for i in range(sizes.artists):
        artist = JAM[f"artist{i}"]
        record = JAM[f"record{i}"]
        jamendo.append(Triple(artist, RDF_TYPE, JAM.Artist))
        jamendo.append(Triple(artist, JAM.name, Literal(f"Artist-{i}")))
        jamendo.append(Triple(artist, JAM.basedNear, places[(i * 2) % len(places)]))
        jamendo.append(Triple(record, RDF_TYPE, JAM.Record))
        jamendo.append(Triple(record, JAM.title, Literal(f"Record-{i}")))
        jamendo.append(Triple(record, JAM.madeBy, artist))

    # ---- LinkedMDB --------------------------------------------------------------
    linkedmdb: list[Triple] = []
    for i in range(sizes.films):
        film = MDB[f"film{i}"]
        linkedmdb.append(Triple(film, RDF_TYPE, MDB.Film))
        linkedmdb.append(Triple(film, MDB.title, Literal(f"Film {i}")))
        linkedmdb.append(Triple(film, MDB.director, MDB[f"director{i % 15}"]))
        linkedmdb.append(Triple(film, OWL_SAMEAS, dbp_films[i % len(dbp_films)]))
        linkedmdb.append(Triple(film, MDB.year, typed_literal(1980 + i % 40)))
    for i in range(15):
        director = MDB[f"director{i}"]
        linkedmdb.append(Triple(director, RDF_TYPE, MDB.Director))
        linkedmdb.append(Triple(director, MDB.name, Literal(f"MDB Director {i}")))

    # ---- New York Times -----------------------------------------------------------
    nytimes: list[Triple] = []
    for i in range(sizes.topics):
        topic = NYT[f"topic{i}"]
        nytimes.append(Triple(topic, RDF_TYPE, NYT.Topic))
        nytimes.append(Triple(topic, NYT.name, Literal(f"Topic {i}")))
        target = dbp_drugs[i % len(dbp_drugs)] if i % 2 else dbp_films[i % len(dbp_films)]
        nytimes.append(Triple(topic, OWL_SAMEAS, target))
        nytimes.append(Triple(topic, NYT.articleCount, typed_literal(5 + i % 120)))

    # ---- Semantic Web Dog Food -------------------------------------------------------
    swdogfood: list[Triple] = []
    for i in range(sizes.papers):
        paper = SWDF[f"paper{i}"]
        author = SWDF[f"person{i % 12}"]
        swdogfood.append(Triple(paper, RDF_TYPE, SWDF.Paper))
        swdogfood.append(Triple(paper, SWDF.title, Literal(f"Paper {i}")))
        swdogfood.append(Triple(paper, SWDF.author, author))
    for i in range(12):
        person = SWDF[f"person{i}"]
        swdogfood.append(Triple(person, RDF_TYPE, SWDF.Person))
        swdogfood.append(Triple(person, SWDF.name, Literal(f"Researcher {i}")))
        swdogfood.append(Triple(person, SWDF.affiliation, DBP[f"Entity_{(i * 2 + 1) % sizes.dbpedia_entities}"]))

    data = {
        "tcga-m": tcga_m,
        "tcga-e": tcga_e,
        "tcga-a": tcga_a,
        "chebi": chebi,
        "dbpedia": dbpedia,
        "drugbank": drugbank,
        "geonames": geonames,
        "jamendo": jamendo,
        "kegg": kegg,
        "linkedmdb": linkedmdb,
        "nytimes": nytimes,
        "swdogfood": swdogfood,
        "affymetrix": affymetrix,
    }
    federation = Federation()
    for name, region in zip(ENDPOINT_NAMES, regions):
        federation.add(Endpoint(name=name, triples=data[name], region=region))
    return federation
