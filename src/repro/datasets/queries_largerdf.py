"""The LargeRDFBench-style query workload: 14 simple (S), 10 complex (C),
8 big-data (B) queries over :mod:`repro.datasets.largerdf`.

Categories follow LargeRDFBench:

* **S** — few triple patterns, selective, 2-3 endpoints (subsumes the
  FedBench-style workload);
* **C** — more triple patterns plus advanced clauses (FILTER, OPTIONAL,
  UNION, DISTINCT, LIMIT), moderate-to-large intermediate results;
* **B** — queries over the LinkedTCGA endpoints producing large
  intermediate and final results.

As in the paper, **C5, B5 and B6 join two disjoint subgraphs through a
FILTER variable** — a query class neither Lusail nor its competitors
support; :func:`paper_selection` excludes them, :func:`all_queries`
includes them for completeness.
"""

from __future__ import annotations

from repro.datasets.largerdf import LARGERDF_PREFIXES

_P = LARGERDF_PREFIXES
_OWL = "PREFIX owl: <http://www.w3.org/2002/07/owl#>\n"
_RDFS = "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
_ALL = _P + _OWL + _RDFS

SIMPLE: dict[str, str] = {
    "S1": _ALL + """
SELECT ?drug ?name ?abstract WHERE {
  ?drug drugb:casNumber "CAS-2005" .
  ?drug drugb:name ?name .
  ?drug owl:sameAs ?dbp .
  ?dbp dbpo:abstract ?abstract .
}""",
    "S2": _ALL + """
SELECT ?topic ?label WHERE {
  ?topic a nyt:Topic .
  ?topic nyt:name "Topic 8" .
  ?topic owl:sameAs ?entity .
  ?entity rdfs:label ?label .
}""",
    "S3": _ALL + """
SELECT ?film ?director WHERE {
  ?film a mdb:Film .
  ?film owl:sameAs ?dbpFilm .
  ?dbpFilm dbpo:director ?director .
}""",
    "S4": _ALL + """
SELECT ?kegg ?mass WHERE {
  ?kegg a kegg:Compound .
  ?kegg owl:sameAs ?chebiC .
  ?chebiC chebi:mass ?mass .
  FILTER (?mass < 75)
}""",
    "S5": _ALL + """
SELECT ?drug ?keggName WHERE {
  ?drug drugb:indication "lung" .
  ?drug drugb:keggCompoundId ?compound .
  ?compound kegg:name ?keggName .
}""",
    "S6": _ALL + """
SELECT ?artist ?name ?place WHERE {
  ?artist a jam:Artist .
  ?artist jam:name ?name .
  ?artist jam:basedNear ?place .
  ?place geo:countryCode "DE" .
}""",
    "S7": _ALL + """
SELECT ?paper ?person ?orgLabel WHERE {
  ?paper swdf:author ?person .
  ?person swdf:affiliation ?org .
  ?org rdfs:label ?orgLabel .
}""",
    "S8": _ALL + """
SELECT ?drug ?chebiName WHERE {
  ?drug drugb:chebiIngredient ?compound .
  ?compound chebi:name ?chebiName .
  ?drug drugb:name ?drugName .
}""",
    "S9": _ALL + """
SELECT ?topic ?label WHERE {
  ?topic owl:sameAs ?film .
  ?film a dbpo:Film .
  ?film rdfs:label ?label .
}""",
    "S10": _ALL + """
SELECT ?place ?name ?pop WHERE {
  ?place a geo:Feature .
  ?place geo:name ?name .
  ?place geo:countryCode "US" .
  ?place geo:population ?pop .
  FILTER (?pop > 20000)
}""",
    "S11": _ALL + """
SELECT ?film ?label WHERE {
  ?film mdb:year 2005 .
  ?film owl:sameAs ?dbpFilm .
  ?dbpFilm rdfs:label ?label .
}""",
    "S12": _ALL + """
SELECT ?drug ?cas ?abstract WHERE {
  ?drug owl:sameAs ?dbp .
  ?drug drugb:casNumber ?cas .
  ?dbp dbpo:abstract ?abstract .
}""",
    "S13": _ALL + """
SELECT ?patient ?placeName WHERE {
  ?patient tcgaa:disease "lung" .
  ?patient tcgaa:location ?place .
  ?place geo:name ?placeName .
}""",
    "S14": _ALL + """
SELECT ?result ?patient ?level WHERE {
  ?result tcgae:patient ?patient .
  ?result tcgae:level ?level .
  ?patient tcgaa:gender "female" .
  FILTER (?level > 4000)
}""",
}

COMPLEX: dict[str, str] = {
    "C1": _ALL + """
SELECT ?drug ?chebiName ?abstract ?articles WHERE {
  ?drug drugb:indication "lung" .
  ?drug drugb:keggCompoundId ?keggC .
  ?keggC owl:sameAs ?chebiC .
  ?chebiC chebi:name ?chebiName .
  ?drug owl:sameAs ?dbpDrug .
  ?dbpDrug dbpo:abstract ?abstract .
  OPTIONAL {
    ?topic owl:sameAs ?dbpDrug .
    ?topic nyt:articleCount ?articles .
  }
}""",
    "C2": _ALL + """
SELECT ?methyl ?gene ?symbol ?expr WHERE {
  ?patient tcgaa:barcode "TCGA-0005" .
  ?methyl tcgam:patient ?patient .
  ?methyl tcgam:gene ?gene .
  ?gene affy:symbol ?symbol .
  ?expr tcgae:patient ?patient .
}""",
    "C3": _ALL + """
SELECT ?film ?directorName ?label ?articles WHERE {
  ?film a mdb:Film .
  ?film mdb:director ?director .
  ?director mdb:name ?directorName .
  ?film owl:sameAs ?dbpFilm .
  ?dbpFilm rdfs:label ?label .
  OPTIONAL {
    ?topic owl:sameAs ?dbpFilm .
    ?topic nyt:articleCount ?articles .
  }
}""",
    "C4": _ALL + """
SELECT ?methyl ?disease ?symbol WHERE {
  ?methyl tcgam:patient ?patient .
  ?patient tcgaa:disease ?disease .
  ?methyl tcgam:gene ?gene .
  ?gene affy:symbol ?symbol .
} LIMIT 50""",
    "C5": _ALL + """
SELECT ?chebiC ?keggC WHERE {
  ?chebiC chebi:mass ?m1 .
  ?keggC kegg:mass ?m2 .
  FILTER (?m1 = ?m2)
}""",
    "C6": _ALL + """
SELECT ?artist ?name ?title ?cc WHERE {
  ?artist a jam:Artist .
  ?artist jam:name ?name .
  ?artist jam:basedNear ?place .
  ?place geo:countryCode ?cc .
  ?place geo:population ?pop .
  ?record jam:madeBy ?artist .
  ?record jam:title ?title .
  FILTER (?pop > 30000)
}""",
    "C7": _ALL + """
SELECT DISTINCT ?patient ?age ?placeName WHERE {
  ?patient a tcgaa:Patient .
  ?patient tcgaa:gender "female" .
  ?patient tcgaa:age ?age .
  ?patient tcgaa:disease "breast" .
  ?patient tcgaa:location ?place .
  ?place geo:name ?placeName .
  ?place geo:countryCode "US" .
  FILTER (?age > 40)
}""",
    "C8": _ALL + """
SELECT ?drug ?name ?compoundName WHERE {
  ?drug drugb:name ?name .
  {
    ?drug drugb:keggCompoundId ?kc .
    ?kc kegg:name ?compoundName .
  } UNION {
    ?drug drugb:chebiIngredient ?cc .
    ?cc chebi:name ?compoundName .
  }
}""",
    "C9": _ALL + """
SELECT ?person ?personName ?orgLabel ?paper WHERE {
  ?person a swdf:Person .
  ?person swdf:name ?personName .
  ?person swdf:affiliation ?org .
  ?org rdfs:label ?orgLabel .
  ?paper swdf:author ?person .
  ?paper swdf:title ?title .
}""",
    "C10": _ALL + """
SELECT DISTINCT ?patient ?gene WHERE {
  ?expr tcgae:patient ?patient .
  ?methyl tcgam:patient ?patient .
  ?expr tcgae:gene ?gene .
  ?methyl tcgam:gene ?gene .
  ?gene affy:chromosome "7" .
}""",
}

BIG: dict[str, str] = {
    "B1": _ALL + """
SELECT ?result ?patient ?disease WHERE {
  {
    ?result tcgam:gene ?gene .
    ?result tcgam:patient ?patient .
  } UNION {
    ?result tcgae:gene ?gene .
    ?result tcgae:patient ?patient .
  }
  ?gene affy:chromosome "1" .
  ?patient tcgaa:disease ?disease .
}""",
    "B2": _ALL + """
SELECT ?expr ?patient ?level WHERE {
  ?expr tcgae:patient ?patient .
  ?expr tcgae:level ?level .
  ?patient tcgaa:gender "male" .
}""",
    "B3": _ALL + """
SELECT ?patient ?gene ?beta ?level WHERE {
  ?methyl tcgam:patient ?patient .
  ?methyl tcgam:gene ?gene .
  ?methyl tcgam:betaValue ?beta .
  ?expr tcgae:patient ?patient .
  ?expr tcgae:gene ?gene .
  ?expr tcgae:level ?level .
}""",
    "B4": _ALL + """
SELECT ?methyl ?patient ?placeName WHERE {
  ?methyl tcgam:patient ?patient .
  ?patient tcgaa:location ?place .
  ?place geo:name ?placeName .
}""",
    "B5": _ALL + """
SELECT ?methyl ?expr WHERE {
  ?methyl tcgam:betaValue ?beta .
  ?expr tcgae:level ?level .
  FILTER (?level = ?beta)
}""",
    "B6": _ALL + """
SELECT ?gene ?compound WHERE {
  ?gene affy:symbol ?symbol .
  ?compound chebi:name ?name .
  FILTER (?symbol = ?name)
}""",
    "B7": _ALL + """
SELECT ?gene ?symbol ?beta ?level WHERE {
  ?gene affy:symbol ?symbol .
  ?methyl tcgam:gene ?gene .
  ?methyl tcgam:betaValue ?beta .
  ?expr tcgae:gene ?gene .
  ?expr tcgae:level ?level .
}""",
    "B8": _ALL + """
SELECT ?patient ?beta ?level WHERE {
  ?patient tcgaa:disease "lung" .
  ?patient tcgaa:gender "female" .
  ?methyl tcgam:patient ?patient .
  ?methyl tcgam:betaValue ?beta .
  ?expr tcgae:patient ?patient .
  ?expr tcgae:level ?level .
}""",
}

#: Queries the paper excludes (disjoint subgraphs joined by a FILTER).
EXCLUDED = ("C5", "B5", "B6")


def all_queries() -> dict[str, str]:
    merged: dict[str, str] = {}
    merged.update(SIMPLE)
    merged.update(COMPLEX)
    merged.update(BIG)
    return merged


def paper_selection() -> dict[str, str]:
    """The 29 queries the paper evaluates (C5/B5/B6 excluded)."""
    return {name: text for name, text in all_queries().items() if name not in EXCLUDED}


def category(name: str) -> str:
    if name in SIMPLE:
        return "S"
    if name in COMPLEX:
        return "C"
    if name in BIG:
        return "B"
    raise KeyError(name)


def by_category(cat: str) -> dict[str, str]:
    source = {"S": SIMPLE, "C": COMPLEX, "B": BIG}[cat]
    return {name: text for name, text in source.items() if name not in EXCLUDED}
