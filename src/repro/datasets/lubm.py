"""LUBM-style data generator (Guo, Pan & Heflin 2005), decentralized.

One endpoint per university, as in the paper's setup.  Each university
contains departments, professors, courses, and students, with the LUBM
interlink structure: students' ``undergraduateDegreeFrom`` and
professors' ``mastersDegreeFrom`` / ``doctoralDegreeFrom`` point to a
random university, which may be *remote* — an IRI managed by another
endpoint.  As in the raw LUBM data files, referenced remote universities
are **not** re-described locally (no local ``rdf:type``/``name``
triples); that property is what makes the paper's Q1 and Q2 disjoint
under LADE's type-constrained locality checks.

Everything is seeded and deterministic.  The default profile yields
roughly 1.5-2K triples per university — the paper's 138K triples per
university scaled down for pure Python, with the same shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.endpoint.endpoint import Endpoint
from repro.endpoint.federation import Federation
from repro.net import regions as regions_module
from repro.rdf.namespaces import RDF_TYPE, UB
from repro.rdf.terms import IRI, Literal
from repro.rdf.triple import Triple


@dataclass(frozen=True)
class UniversityProfile:
    """Entity counts per university (the scale knob)."""

    departments: int = 3
    professors_per_department: int = 4
    courses_per_professor: int = 2
    graduate_students_per_department: int = 10
    undergraduate_students_per_department: int = 12
    courses_taken_per_student: int = 2
    #: Probability a student's/professor's degree is from the local
    #: university; the rest go to a uniformly random (possibly remote)
    #: one — LUBM's interlink structure.
    local_degree_probability: float = 0.2


SMALL_PROFILE = UniversityProfile()

#: Larger universities for the head-to-head benchmarks (Figs 3, 12, 14c):
#: enough students that one-triple-pattern-at-a-time engines pay the
#: paper-visible bound-join penalty.
BENCH_PROFILE = UniversityProfile(
    departments=4,
    professors_per_department=5,
    courses_per_professor=2,
    graduate_students_per_department=60,
    undergraduate_students_per_department=80,
)

#: Smaller universities for the 256-endpoint scalability runs.
TINY_PROFILE = UniversityProfile(
    departments=2,
    professors_per_department=2,
    courses_per_professor=2,
    graduate_students_per_department=4,
    undergraduate_students_per_department=5,
)


def scaled_profile(scale: float, base: UniversityProfile = BENCH_PROFILE) -> UniversityProfile:
    """``base`` with departments and student bodies multiplied by ``scale``.

    Triples per university grow roughly quadratically in ``scale``
    (departments × students-per-department both scale), so modest factors
    reach paper-sized endpoints: the array-substrate scale gate uses this
    to build single endpoints holding ≥10⁵ triples.  Faculty size per
    department and the interlink probabilities stay fixed — the data
    *shape* (selectivities, locality) is preserved, only the volume moves.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    scaled = lambda value: max(1, round(value * scale))  # noqa: E731
    return UniversityProfile(
        departments=scaled(base.departments),
        professors_per_department=base.professors_per_department,
        courses_per_professor=base.courses_per_professor,
        graduate_students_per_department=scaled(base.graduate_students_per_department),
        undergraduate_students_per_department=scaled(
            base.undergraduate_students_per_department
        ),
        courses_taken_per_student=base.courses_taken_per_student,
        local_degree_probability=base.local_degree_probability,
    )


def university_iri(index: int) -> IRI:
    return IRI(f"http://www.university{index}.example.org/university")


class _UniversityBuilder:
    """Generates one university's triples."""

    def __init__(self, index: int, total: int, profile: UniversityProfile, rng: random.Random):
        self.index = index
        self.total = total
        self.profile = profile
        self.rng = rng
        self.base = f"http://www.university{index}.example.org/"
        self.triples: list[Triple] = []

    def iri(self, local: str) -> IRI:
        return IRI(self.base + local)

    def add(self, s, p, o) -> None:
        self.triples.append(Triple(s, p, o))

    def degree_university(self) -> IRI:
        """The local university, or a random one (possibly remote)."""
        if self.total == 1 or self.rng.random() < self.profile.local_degree_probability:
            return university_iri(self.index)
        return university_iri(self.rng.randrange(self.total))

    def build(self) -> list[Triple]:
        profile = self.profile
        university = university_iri(self.index)
        self.add(university, RDF_TYPE, UB.University)
        self.add(university, UB.name, Literal(f"University{self.index}"))
        self.add(university, UB.address, Literal(f"{self.index} College Road"))

        for dept_index in range(profile.departments):
            department = self.iri(f"department{dept_index}")
            self.add(department, RDF_TYPE, UB.Department)
            self.add(department, UB.name, Literal(f"Department{dept_index}"))
            self.add(department, UB.subOrganizationOf, university)

            professors: list[IRI] = []
            courses: list[IRI] = []
            course_of: dict[IRI, IRI] = {}
            for prof_index in range(profile.professors_per_department):
                professor = self.iri(f"department{dept_index}/professor{prof_index}")
                professors.append(professor)
                prof_type = UB.FullProfessor if prof_index == 0 else UB.AssociateProfessor
                self.add(professor, RDF_TYPE, prof_type)
                self.add(professor, UB.name, Literal(f"Professor{dept_index}_{prof_index}"))
                self.add(professor, UB.worksFor, department)
                self.add(
                    professor,
                    UB.emailAddress,
                    Literal(f"prof{dept_index}_{prof_index}@university{self.index}.example.org"),
                )
                self.add(professor, UB.undergraduateDegreeFrom, self.degree_university())
                self.add(professor, UB.mastersDegreeFrom, self.degree_university())
                self.add(professor, UB.doctoralDegreeFrom, self.degree_university())
                if prof_index == 0:
                    self.add(professor, UB.headOf, department)
                for course_index in range(profile.courses_per_professor):
                    course = self.iri(
                        f"department{dept_index}/course{prof_index}_{course_index}"
                    )
                    courses.append(course)
                    course_of[course] = professor
                    course_type = UB.GraduateCourse if course_index % 2 == 0 else UB.Course
                    self.add(course, RDF_TYPE, course_type)
                    self.add(
                        course, UB.name, Literal(f"Course{dept_index}_{prof_index}_{course_index}")
                    )
                    self.add(professor, UB.teacherOf, course)

            for student_index in range(profile.graduate_students_per_department):
                student = self.iri(f"department{dept_index}/gradstudent{student_index}")
                self.add(student, RDF_TYPE, UB.GraduateStudent)
                self.add(student, UB.name, Literal(f"GradStudent{dept_index}_{student_index}"))
                self.add(student, UB.memberOf, department)
                self.add(student, UB.undergraduateDegreeFrom, self.degree_university())
                # Round-robin advisors so every professor advises someone,
                # and the first course taken is the advisor's first
                # (graduate) course — LUBM Q9-style queries stay answerable
                # at every endpoint, which LADE's locality checks rely on.
                advisor = professors[student_index % len(professors)]
                self.add(student, UB.advisor, advisor)
                advisor_courses = [c for c in courses if course_of[c] == advisor]
                taken = {advisor_courses[0]}
                while len(taken) < min(profile.courses_taken_per_student, len(courses)):
                    taken.add(self.rng.choice(courses))
                for course in sorted(taken, key=lambda iri: iri.value):
                    self.add(student, UB.takesCourse, course)

            for student_index in range(profile.undergraduate_students_per_department):
                student = self.iri(f"department{dept_index}/undergrad{student_index}")
                self.add(student, RDF_TYPE, UB.UndergraduateStudent)
                self.add(student, UB.name, Literal(f"Undergrad{dept_index}_{student_index}"))
                self.add(student, UB.memberOf, department)
                # Round-robin plus one random course: every course ends up
                # taken by at least one student (given enough undergrads).
                taken_courses = {courses[student_index % len(courses)]}
                taken_courses.add(self.rng.choice(courses))
                for course in sorted(taken_courses, key=lambda iri: iri.value):
                    self.add(student, UB.takesCourse, course)

        return self.triples


def generate_university(
    index: int,
    total: int,
    profile: UniversityProfile = SMALL_PROFILE,
    seed: int = 42,
) -> list[Triple]:
    """Generate the triples of one university endpoint."""
    rng = random.Random(f"{seed}:{index}:{total}")
    return _UniversityBuilder(index, total, profile, rng).build()


def build_federation(
    universities: int,
    profile: UniversityProfile = SMALL_PROFILE,
    seed: int = 42,
    geo: bool = False,
) -> Federation:
    """A federation with one endpoint per university.

    ``geo=True`` spreads the endpoints over the Azure regions used in the
    paper's geo-distributed experiments.
    """
    regions = (
        regions_module.assign_regions(universities)
        if geo
        else [regions_module.LOCAL] * universities
    )
    federation = Federation()
    for index in range(universities):
        endpoint = Endpoint(
            name=f"university{index}",
            triples=generate_university(index, universities, profile, seed),
            region=regions[index],
        )
        federation.add(endpoint)
    return federation


# --------------------------------------------------------------------------
# The paper's LUBM queries (Sec VI: Q1=LUBM Q2, Q2=LUBM Q9, Q3=LUBM Q13,
# Q4 = a Q9 variation fetching remote-university information).

_PREFIX = "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"


def query_q1() -> str:
    """LUBM Q2: the student/department/university triangle (disjoint)."""
    return _PREFIX + """
SELECT ?x ?y ?z WHERE {
  ?x a ub:GraduateStudent .
  ?y a ub:University .
  ?z a ub:Department .
  ?x ub:memberOf ?z .
  ?z ub:subOrganizationOf ?y .
  ?x ub:undergraduateDegreeFrom ?y .
}
"""


def query_q2() -> str:
    """LUBM Q9: students taking a course taught by their advisor (disjoint)."""
    return _PREFIX + """
SELECT ?x ?y ?z WHERE {
  ?x a ub:GraduateStudent .
  ?y a ub:FullProfessor .
  ?z a ub:GraduateCourse .
  ?x ub:advisor ?y .
  ?y ub:teacherOf ?z .
  ?x ub:takesCourse ?z .
}
"""


def query_q3(university_index: int = 0) -> str:
    """LUBM Q13: graduate students with an undergraduate degree from
    university0 (GJV from source-selection information alone)."""
    return _PREFIX + f"""
SELECT ?x WHERE {{
  ?x a ub:GraduateStudent .
  ?x ub:undergraduateDegreeFrom <{university_iri(university_index).value}> .
}}
"""


def query_q4() -> str:
    """Q9 variation: also fetch the advisor's (possibly remote) alma
    mater's name — forces a cross-endpoint join like the paper's Qa."""
    return _PREFIX + """
SELECT ?x ?y ?u ?n WHERE {
  ?x a ub:GraduateStudent .
  ?x ub:advisor ?y .
  ?y ub:teacherOf ?z .
  ?x ub:takesCourse ?z .
  ?y ub:doctoralDegreeFrom ?u .
  ?u ub:name ?n .
}
"""


def query_q5() -> str:
    """Crossing fan-out: every graduate student at the university where
    a full professor earned their doctorate.  The crossing join has high
    fan-out (one remote university expands to all of its students), the
    regime where shipping join *inputs* beats shipping join results."""
    return _PREFIX + """
SELECT ?y ?u ?x WHERE {
  ?y a ub:FullProfessor .
  ?y ub:doctoralDegreeFrom ?u .
  ?z ub:subOrganizationOf ?u .
  ?x ub:memberOf ?z .
  ?x a ub:GraduateStudent .
}
"""


def query_q6() -> str:
    """Double crossing: full professors with the names of both their
    masters and doctoral universities.  Two independent crossing edges
    (three fragments), each against the name predicate — almost every
    locally-named entity is *not* a referenced university, so join-value
    digests prune the name fragments to nearly nothing."""
    return _PREFIX + """
SELECT ?y ?n ?m WHERE {
  ?y a ub:FullProfessor .
  ?y ub:mastersDegreeFrom ?u .
  ?u ub:name ?n .
  ?y ub:doctoralDegreeFrom ?v .
  ?v ub:name ?m .
}
"""


def queries() -> dict[str, str]:
    """The paper's four LUBM queries."""
    return {"Q1": query_q1(), "Q2": query_q2(), "Q3": query_q3(), "Q4": query_q4()}


def crossing_queries() -> dict[str, str]:
    """Queries whose joins must cross endpoint boundaries.

    The partial-evaluation benchmarks run these head-to-head against the
    bound-join ladder: Q4 and Q6 are crossing-heavy (most of their
    intermediate volume is prunable by join-value digests), while Q5 is
    the high-fan-out case where partial evaluation wins on rounds and
    virtual time but both strategies ship similar input volumes.
    """
    return {"Q4": query_q4(), "Q5": query_q5(), "Q6": query_q6()}
