"""Bio2RDF-style endpoints for the paper's "Real Endpoints" experiment.

Sec VI-D queries live Bio2RDF endpoints with three queries from the
Bio2RDF query log: R1 joins DrugBank, HGNC, and MGI; R2 joins PharmGKB
and OMIM; R3 joins DrugBank and OMIM.  We rebuild five interlinked
life-science endpoints with the corresponding cross-references:

* **drugbank** — drugs with gene targets (HGNC symbols as IRIs);
* **hgnc** — human gene nomenclature: symbol, name, mouse ortholog (MGI);
* **mgi** — mouse genome informatics: markers with names;
* **pharmgkb** — pharmacogenomics: gene-drug annotations, OMIM links;
* **omim** — Mendelian inheritance: phenotype entries for genes.
"""

from __future__ import annotations

import random

from repro.endpoint.endpoint import Endpoint
from repro.endpoint.federation import Federation
from repro.net import regions as regions_module
from repro.rdf.namespaces import Namespace, RDF_TYPE
from repro.rdf.terms import Literal
from repro.rdf.triple import Triple

DRUG = Namespace("http://bio2rdf.example.org/drugbank/")
HGNC = Namespace("http://bio2rdf.example.org/hgnc/")
MGI = Namespace("http://bio2rdf.example.org/mgi/")
PGKB = Namespace("http://bio2rdf.example.org/pharmgkb/")
OMIM = Namespace("http://bio2rdf.example.org/omim/")

BIO2RDF_PREFIXES = (
    "PREFIX drug: <http://bio2rdf.example.org/drugbank/>\n"
    "PREFIX hgnc: <http://bio2rdf.example.org/hgnc/>\n"
    "PREFIX mgi: <http://bio2rdf.example.org/mgi/>\n"
    "PREFIX pgkb: <http://bio2rdf.example.org/pharmgkb/>\n"
    "PREFIX omim: <http://bio2rdf.example.org/omim/>\n"
)


def build_federation(
    genes: int = 80,
    drugs: int = 60,
    annotations: int = 120,
    seed: int = 42,
    geo: bool = False,
) -> Federation:
    rng = random.Random(f"bio2rdf:{seed}")
    regions = (
        regions_module.assign_regions(5) if geo else [regions_module.LOCAL] * 5
    )

    gene_iris = [HGNC[f"gene{i}"] for i in range(genes)]
    mgi_iris = [MGI[f"marker{i}"] for i in range(genes)]
    omim_iris = [OMIM[f"entry{i}"] for i in range(genes)]
    drug_iris = [DRUG[f"drug{i}"] for i in range(drugs)]

    hgnc_triples: list[Triple] = []
    for i, gene in enumerate(gene_iris):
        hgnc_triples.append(Triple(gene, RDF_TYPE, HGNC.Gene))
        hgnc_triples.append(Triple(gene, HGNC.symbol, Literal(f"HG{i}")))
        hgnc_triples.append(Triple(gene, HGNC.approvedName, Literal(f"human gene {i}")))
        hgnc_triples.append(Triple(gene, HGNC.mouseOrtholog, mgi_iris[i]))

    mgi_triples: list[Triple] = []
    for i, marker in enumerate(mgi_iris):
        mgi_triples.append(Triple(marker, RDF_TYPE, MGI.Marker))
        mgi_triples.append(Triple(marker, MGI.name, Literal(f"mouse marker {i}")))
        mgi_triples.append(Triple(marker, MGI.chromosome, Literal(str(1 + i % 19))))

    drugbank_triples: list[Triple] = []
    for i, drug in enumerate(drug_iris):
        drugbank_triples.append(Triple(drug, RDF_TYPE, DRUG.Drug))
        drugbank_triples.append(Triple(drug, DRUG.label, Literal(f"bio-drug-{i}")))
        for k in range(2):
            target = gene_iris[(i * 2 + k) % genes]
            drugbank_triples.append(Triple(drug, DRUG.target, target))
        drugbank_triples.append(Triple(drug, DRUG.omimReference, omim_iris[(i * 3) % genes]))

    pharmgkb_triples: list[Triple] = []
    for i in range(annotations):
        annotation = PGKB[f"annotation{i}"]
        pharmgkb_triples.append(Triple(annotation, RDF_TYPE, PGKB.Annotation))
        pharmgkb_triples.append(Triple(annotation, PGKB.gene, gene_iris[i % genes]))
        pharmgkb_triples.append(Triple(annotation, PGKB.omimLink, omim_iris[i % genes]))
        pharmgkb_triples.append(
            Triple(annotation, PGKB.evidence, Literal(rng.choice(["1A", "1B", "2A", "3"])))
        )

    omim_triples: list[Triple] = []
    for i, entry in enumerate(omim_iris):
        omim_triples.append(Triple(entry, RDF_TYPE, OMIM.Entry))
        omim_triples.append(Triple(entry, OMIM.title, Literal(f"phenotype {i}")))
        omim_triples.append(Triple(entry, OMIM.mimNumber, Literal(str(100000 + i))))

    federation = Federation()
    for name, triples, region in (
        ("drugbank", drugbank_triples, regions[0]),
        ("hgnc", hgnc_triples, regions[1]),
        ("mgi", mgi_triples, regions[2]),
        ("pharmgkb", pharmgkb_triples, regions[3]),
        ("omim", omim_triples, regions[4]),
    ):
        federation.add(Endpoint(name=name, triples=triples, region=region))
    return federation


def query_r1() -> str:
    """R1: drugs -> human gene targets -> mouse orthologs (3 endpoints)."""
    return BIO2RDF_PREFIXES + """
SELECT ?drug ?symbol ?markerName WHERE {
  ?drug a drug:Drug .
  ?drug drug:target ?gene .
  ?gene hgnc:symbol ?symbol .
  ?gene hgnc:mouseOrtholog ?marker .
  ?marker mgi:name ?markerName .
}
"""


def query_r2() -> str:
    """R2: PharmGKB annotations joined with OMIM phenotype entries."""
    return BIO2RDF_PREFIXES + """
SELECT ?annotation ?evidence ?title WHERE {
  ?annotation a pgkb:Annotation .
  ?annotation pgkb:evidence ?evidence .
  ?annotation pgkb:omimLink ?entry .
  ?entry omim:title ?title .
}
"""


def query_r3() -> str:
    """R3: DrugBank drugs with their OMIM phenotype references."""
    return BIO2RDF_PREFIXES + """
SELECT ?drug ?label ?mim WHERE {
  ?drug a drug:Drug .
  ?drug drug:label ?label .
  ?drug drug:omimReference ?entry .
  ?entry omim:mimNumber ?mim .
}
"""


def queries() -> dict[str, str]:
    return {"R1": query_r1(), "R2": query_r2(), "R3": query_r3()}
