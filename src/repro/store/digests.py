"""Join-value digests: per-predicate value fingerprints for partial eval.

Partial evaluation (Peng/Zou) ships the whole branch plan to every
endpoint and assembles the returned partial matches centrally.  Shipped
naively, a fragment's extent at one endpoint can dwarf the bound-join
ladder it replaces: most local rows never join with *any* row from the
other endpoints.  The digest index gives each endpoint a cheap, sound
way to drop those rows before they cross the wire.

A digest is the set of 32-bit fingerprints (:func:`stable_term_hash`,
CRC-32 over the term's N3 form) of every distinct subject or object
value a predicate carries in one store.  The mediator unions the
digests of the endpoints on the *other* side of a crossing edge and
embeds that set in the partial request; the evaluating endpoint keeps a
fragment row only if its crossing-variable value hashes into the set.
CRC collisions can only keep extra rows, never drop one, so pruning is
sound — the mediator join discards survivors that do not actually match.

Digests are built lazily per ``(predicate, position)`` from the store's
match index and cached under ``store.version``, the same invalidation
discipline as the plan cache and the characteristic-set summaries.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rdf.terms import Term
    from repro.store.triple_store import TripleStore

#: Digest positions: which end of the predicate's triples is hashed.
SUBJECT = "subject"
OBJECT = "object"
POSITIONS = (SUBJECT, OBJECT)

#: Wire-size accounting: one fingerprint is a packed 32-bit word.
BYTES_PER_HASH = 4


def stable_term_hash(term: "Term") -> int:
    """A deterministic 32-bit fingerprint of an RDF term.

    Hashes the N3 serialization so IRIs, literals (with datatype and
    language tags) and blank nodes that render identically fingerprint
    identically across endpoints, independent of dictionary ids.
    """
    return zlib.crc32(term.n3().encode("utf-8"))


class JoinDigestIndex:
    """Lazy per-store cache of join-value digests.

    One instance lives on each endpoint.  Digests are computed on first
    request for a ``(predicate, position)`` pair and reused until the
    store mutates (``store.version`` changes), when the whole cache is
    dropped — the store has no per-predicate dirty tracking, and a full
    rebuild of one digest is a single index scan.
    """

    def __init__(self, store: "TripleStore"):
        self._store = store
        self._version = store.version
        self._digests: dict[tuple["Term", str], frozenset[int]] = {}
        #: Full scans performed (observability; cache hits don't count).
        self.builds = 0

    def digest(self, predicate: "Term", position: str) -> frozenset[int]:
        """Fingerprints of the predicate's distinct values at ``position``."""
        if position not in POSITIONS:
            raise ValueError(f"unknown digest position: {position!r}")
        store = self._store
        if store.version != self._version:
            self._digests.clear()
            self._version = store.version
        key = (predicate, position)
        cached = self._digests.get(key)
        if cached is not None:
            return cached
        subject_end = position == SUBJECT
        values = {
            stable_term_hash(triple.subject if subject_end else triple.object)
            for triple in store.match(None, predicate, None)
        }
        digest = frozenset(values)
        self._digests[key] = digest
        self.builds += 1
        return digest

    @property
    def version(self) -> int:
        """Store version the cached digests are valid for."""
        return self._version


def digest_bytes(digest: frozenset[int]) -> int:
    """Wire size of one digest (packed 32-bit fingerprints)."""
    return len(digest) * BYTES_PER_HASH
