"""Sorted-run columnar index: three parallel ``array('q')`` id columns.

This is the array-backed substrate behind :class:`~repro.store.TripleStore`'s
default backend.  One :class:`SortedRunIndex` holds one permutation (SPO,
POS or OSP) as three parallel signed-64-bit columns sorted lexicographically
by ``(a, b, c)`` — the RDF-3X layout, minus compression.  Compared to the
nested dict-of-sets indexes it replaces, the run answers every bound-prefix
probe with binary searches (``bisect`` runs at C speed over ``array``), the
result of any probe comes back *sorted*, and storage is ~24 bytes/triple of
columns instead of hundreds of bytes of dict/set overhead.

Mutations do not rewrite the run: inserts land in an unsorted ``tail`` set
and deletes of run-resident rows land in a ``tombstones`` set.  Probes merge
the (sorted) run range with the matching tail rows and filter tombstones, so
results stay sorted and exact.  When either side-structure outgrows an
amortization bound proportional to the run length, the whole index is
flushed into one fresh run (an O(n) merge paid once per O(n/8) mutations).
Bulk loads bypass the tail entirely: :meth:`bulk_insert` merges a pre-sorted
row block straight into the run, which is how ``TripleStore.add_all`` builds
each permutation with one sort and no per-row dict churn.
"""

from __future__ import annotations

import heapq
from array import array
from bisect import bisect_left, bisect_right
from itertools import islice
from typing import Iterable, Iterator, Sequence

IdRow = tuple  # (a, b, c) in this index's permutation order

#: Tail/tombstone growth bound: flush once a side structure exceeds
#: ``max(_MIN_TAIL, run_length // _TAIL_FRACTION)``.  The floor keeps tiny
#: stores from flushing constantly; the fraction keeps the amortized cost of
#: incremental mutation at O(_TAIL_FRACTION) array writes per row.
_MIN_TAIL = 1024
_TAIL_FRACTION = 8


class SortedRunIndex:
    """One permutation index: a sorted run plus tail/tombstone deltas."""

    __slots__ = ("_a", "_b", "_c", "tail", "tombstones")

    def __init__(self) -> None:
        self._a = array("q")
        self._b = array("q")
        self._c = array("q")
        #: Rows inserted since the last flush (disjoint from the run).
        self.tail: set[IdRow] = set()
        #: Run-resident rows deleted since the last flush.
        self.tombstones: set[IdRow] = set()

    # ------------------------------------------------------------ inspection

    def __len__(self) -> int:
        return len(self._a) - len(self.tombstones) + len(self.tail)

    @property
    def run_length(self) -> int:
        """Rows physically in the sorted run (tombstoned rows included)."""
        return len(self._a)

    @property
    def is_compact(self) -> bool:
        """True when every row lives in the run (fast paths apply)."""
        return not self.tail and not self.tombstones

    def columns(self) -> tuple[memoryview, memoryview, memoryview]:
        """Read-only memoryviews over the run columns (kernel surface)."""
        return (
            memoryview(self._a).toreadonly(),
            memoryview(self._b).toreadonly(),
            memoryview(self._c).toreadonly(),
        )

    def nbytes(self) -> int:
        """Bytes held by the run columns (the dominant storage term)."""
        return self._a.itemsize * (len(self._a) + len(self._b) + len(self._c))

    # ------------------------------------------------------------- mutation

    def add(self, row: IdRow) -> None:
        """Insert ``row``; the caller guarantees it is not already present."""
        if row in self.tombstones:
            # Re-adding a previously removed run-resident row: resurrect it.
            self.tombstones.remove(row)
            return
        self.tail.add(row)
        if len(self.tail) > self._delta_limit():
            self.flush()

    def remove(self, row: IdRow) -> None:
        """Delete ``row``; the caller guarantees it is present."""
        if row in self.tail:
            self.tail.remove(row)
            return
        self.tombstones.add(row)
        if len(self.tombstones) > self._delta_limit():
            self.flush()

    def contains(self, row: IdRow) -> bool:
        if row in self.tail:
            return True
        if row in self.tombstones:
            return False
        lo, hi = self._bounds(row)
        return lo < hi

    def _delta_limit(self) -> int:
        return max(_MIN_TAIL, len(self._a) // _TAIL_FRACTION)

    def flush(self) -> None:
        """Merge tail and tombstones into one fresh sorted run."""
        if self.is_compact:
            return
        rows = list(heapq.merge(self._iter_run_live(), sorted(self.tail)))
        self._rebuild(rows)

    def bulk_insert(self, rows: Sequence[IdRow]) -> None:
        """Merge a sorted, deduplicated block of new rows into the run.

        ``rows`` must be sorted in this permutation's order and disjoint
        from the rows already present.  An empty index takes the columns
        straight from the block (the bulk-load fast path: one sort done by
        the caller, three array builds here, zero per-row overhead).
        """
        if not rows:
            self.flush()
            return
        if len(self._a) == 0 and not self.tail:
            self._rebuild(rows)
            return
        merged = list(heapq.merge(self._iter_run_live(), sorted(self.tail), rows))
        self._rebuild(merged)

    def _rebuild(self, rows: Sequence[IdRow]) -> None:
        self._a = array("q", [row[0] for row in rows])
        self._b = array("q", [row[1] for row in rows])
        self._c = array("q", [row[2] for row in rows])
        self.tail.clear()
        self.tombstones.clear()

    def clear(self) -> None:
        self._rebuild(())

    # --------------------------------------------------------------- probes

    def _bounds(self, prefix: Sequence[int]) -> tuple[int, int]:
        """Run row range ``[lo, hi)`` matching a 0-3 id prefix.

        Level-by-level narrowing: within the rows where column ``a`` equals
        the first key, column ``b`` is itself sorted, so each level is one
        ``bisect_left`` + ``bisect_right`` pair over the narrowed range.
        """
        lo, hi = 0, len(self._a)
        for column, key in zip((self._a, self._b, self._c), prefix):
            if lo == hi:
                break
            lo = bisect_left(column, key, lo, hi)
            hi = bisect_right(column, key, lo, hi)
        return lo, hi

    def _iter_run_live(self) -> Iterator[IdRow]:
        rows = zip(self._a, self._b, self._c)
        if not self.tombstones:
            return rows
        tombstones = self.tombstones
        return (row for row in rows if row not in tombstones)

    def _iter_run_range(self, lo: int, hi: int) -> Iterator[IdRow]:
        rows = zip(self._a[lo:hi], self._b[lo:hi], self._c[lo:hi])
        if not self.tombstones:
            return rows
        tombstones = self.tombstones
        return (row for row in rows if row not in tombstones)

    def iter_prefix(self, prefix: Sequence[int] = ()) -> Iterator[IdRow]:
        """Iterate rows matching an id prefix, sorted in permutation order."""
        lo, hi = self._bounds(prefix)
        run_rows = self._iter_run_range(lo, hi)
        if not self.tail:
            return run_rows
        k = len(prefix)
        key = tuple(prefix)
        tail_rows = sorted(row for row in self.tail if row[:k] == key)
        if not tail_rows:
            return run_rows
        return heapq.merge(run_rows, tail_rows)

    def thirds(self, first: int, second: int) -> Sequence[int]:
        """Sorted third-column values for a fully bound two-id prefix."""
        lo, hi = self._bounds((first, second))
        if self.is_compact:
            return self._c[lo:hi]
        return [row[2] for row in self.iter_prefix((first, second))]

    def count_prefix(self, prefix: Sequence[int] = ()) -> int:
        lo, hi = self._bounds(prefix)
        count = hi - lo
        k = len(prefix)
        if self.tombstones:
            key = tuple(prefix)
            count -= sum(1 for row in self.tombstones if row[:k] == key)
        if self.tail:
            key = tuple(prefix)
            count += sum(1 for row in self.tail if row[:k] == key)
        return count

    def has_prefix(self, prefix: Sequence[int] = ()) -> bool:
        return next(iter(self.iter_prefix(prefix)), None) is not None

    # ----------------------------------------------------- distinct values

    def distinct_firsts(self) -> int:
        """Number of distinct values in the first column."""
        if self.is_compact:
            return _count_distinct(self._a)
        return _count_distinct(row[0] for row in self.iter_prefix(()))

    def iter_distinct_seconds(self, first: int) -> Iterator[int]:
        """Distinct second-column values under ``first``, ascending."""
        lo, hi = self._bounds((first,))
        if self.is_compact:
            return _iter_distinct(islice(self._b, lo, hi))
        return _iter_distinct(row[1] for row in self.iter_prefix((first,)))

    def distinct_seconds(self, first: int) -> int:
        return sum(1 for __ in self.iter_distinct_seconds(first))


def _iter_distinct(values: Iterable[int]) -> Iterator[int]:
    """Distinct values of a sorted iterable (adjacent dedupe)."""
    previous = None
    for value in values:
        if value != previous:
            previous = value
            yield value


def _count_distinct(values: Iterable[int]) -> int:
    return sum(1 for __ in _iter_distinct(values))


def sort_permutations(rows: Iterable[IdRow]) -> tuple[list, list, list]:
    """Sort one (s, p, o) row block into all three permutation orders.

    Returns (spo, pos, osp) row lists, each sorted and deduplicated — the
    bulk-load path: three list sorts total, no per-row index churn.
    """
    spo = sorted(set(rows))
    pos = sorted((p, o, s) for s, p, o in spo)
    osp = sorted((o, s, p) for s, p, o in spo)
    return spo, pos, osp
