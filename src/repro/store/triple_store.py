"""An indexed in-memory triple store, dictionary-encoded.

This is the storage substrate behind every simulated SPARQL endpoint.
Like the RDF-3X-style engines it mirrors, the store first maps every term
to a dense integer id through its :class:`~repro.store.dictionary.TermDictionary`
and then maintains three permutation indexes (SPO, POS, OSP) as nested
dictionaries *keyed on those ids*, which lets any triple pattern with at
least one bound position be answered by integer dictionary lookups rather
than scans or string re-hashing.

The public API still speaks :class:`~repro.rdf.terms.Term`; the id-space
surface (``match_ids`` / ``count_ids`` / ``ask_ids`` and the ``dictionary``
attribute) is what the SPARQL evaluator runs on.  Terms are decoded back
only when a caller asks for :class:`~repro.rdf.triple.Triple` objects.

Per-predicate statistics (triple counts, distinct subjects/objects) are
maintained incrementally — including distinct-subject counts, which used
to require a full SPO scan per call.  The paper notes that "cardinality
statistics per predicate are usually collected by RDF engines for their
runtime query optimization" — SAPE's COUNT probe queries and SPLENDID's
VoID index both read these numbers.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator

from repro.rdf.terms import IRI, PatternTerm, Term, Variable
from repro.rdf.triple import Triple, TriplePattern
from repro.store.dictionary import TermDictionary

_Index = dict  # nested: level1 id -> level2 id -> set(level3 id)

#: An encoded triple: (subject id, predicate id, object id).
IdTriple = tuple


def _index_add(index: _Index, a: int, b: int, c: int) -> None:
    index.setdefault(a, {}).setdefault(b, set()).add(c)


def _index_remove(index: _Index, a: int, b: int, c: int) -> None:
    second = index.get(a)
    if second is None:
        return
    third = second.get(b)
    if third is None:
        return
    third.discard(c)
    if not third:
        del second[b]
        if not second:
            del index[a]


class TripleStore:
    """A set of triples with id-keyed SPO / POS / OSP permutation indexes.

    The store deduplicates triples (RDF graphs are sets).  All match
    methods treat a :class:`Variable` or ``None`` in a position as a
    wildcard.
    """

    def __init__(self, name: str = "store", dictionary: TermDictionary | None = None):
        self.name = name
        #: The per-endpoint term dictionary.  Ids are stable for the
        #: lifetime of the store (``clear`` empties the indexes but keeps
        #: the dictionary, so cached encodings stay valid).
        self.dictionary = dictionary if dictionary is not None else TermDictionary()
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self._size = 0
        #: Data version, bumped on every mutation (add/remove/clear).
        #: Compiled plans (:mod:`repro.sparql.plan`) are pinned to the
        #: version they were built against: their pattern order and
        #: statistics-driven choices are only valid while the data —
        #: and hence the statistics — are unchanged.
        self.version = 0
        self._predicate_counts: Counter[int] = Counter()
        # Incremental distinct-subject statistics: predicate id ->
        # {subject id: number of triples with that (subject, predicate)}.
        # distinct_subjects(p) is then an O(1) len() instead of the full
        # SPO scan it used to be.
        self._predicate_subjects: dict[int, dict[int, int]] = {}

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        lookup = self.dictionary.lookup
        s = lookup(triple.subject)
        if s is None:
            return False
        p = lookup(triple.predicate)
        if p is None:
            return False
        o = lookup(triple.object)
        if o is None:
            return False
        objects = self._spo.get(s, {}).get(p)
        return objects is not None and o in objects

    def __iter__(self) -> Iterator[Triple]:
        decode = self.dictionary.decode
        for s, by_predicate in self._spo.items():
            subject = decode(s)
            for p, objects in by_predicate.items():
                predicate = decode(p)
                for o in objects:
                    yield Triple(subject, predicate, decode(o))

    def __repr__(self) -> str:
        return f"TripleStore({self.name!r}, triples={self._size})"

    # ------------------------------------------------------------------ add

    def add(self, triple: Triple) -> bool:
        """Insert a triple; returns True if it was not already present."""
        encode = self.dictionary.encode
        s = encode(triple.subject)
        p = encode(triple.predicate)
        o = encode(triple.object)
        objects = self._spo.get(s, {}).get(p)
        if objects is not None and o in objects:
            return False
        _index_add(self._spo, s, p, o)
        _index_add(self._pos, p, o, s)
        _index_add(self._osp, o, s, p)
        self._size += 1
        self.version += 1
        self._predicate_counts[p] += 1
        subjects = self._predicate_subjects.setdefault(p, {})
        subjects[s] = subjects.get(s, 0) + 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns how many were new."""
        added = 0
        for triple in triples:
            if self.add(triple):
                added += 1
        return added

    def remove(self, triple: Triple) -> bool:
        """Delete a triple; returns True if it was present."""
        if triple not in self:
            return False
        lookup = self.dictionary.lookup
        s = lookup(triple.subject)
        p = lookup(triple.predicate)
        o = lookup(triple.object)
        _index_remove(self._spo, s, p, o)
        _index_remove(self._pos, p, o, s)
        _index_remove(self._osp, o, s, p)
        self._size -= 1
        self.version += 1
        self._predicate_counts[p] -= 1
        if self._predicate_counts[p] == 0:
            del self._predicate_counts[p]
        subjects = self._predicate_subjects[p]
        subjects[s] -= 1
        if subjects[s] == 0:
            del subjects[s]
            if not subjects:
                del self._predicate_subjects[p]
        return True

    # ---------------------------------------------------------------- match

    def match(
        self,
        subject: PatternTerm | None = None,
        predicate: PatternTerm | None = None,
        object: PatternTerm | None = None,
    ) -> Iterator[Triple]:
        """Iterate triples matching the given positions.

        ``None`` or a :class:`Variable` acts as a wildcard.  Repeated
        variables (e.g. same variable as subject and object) are enforced.
        """
        ids = self._encode_positions(subject, predicate, object)
        if ids is None:
            return iter(())
        s, p, o = ids
        iterator = self.match_ids(s, p, o)
        repeated = _repeated_variable_check(subject, predicate, object)
        if repeated is not None:
            iterator = filter(repeated, iterator)
        return self._decode_triples(iterator)

    def _encode_positions(
        self,
        subject: PatternTerm | None,
        predicate: PatternTerm | None,
        object: PatternTerm | None,
    ) -> tuple[int | None, int | None, int | None] | None:
        """Bound positions -> ids; ``None`` result means "cannot match"."""
        lookup = self.dictionary.lookup
        ids = []
        for position in (subject, predicate, object):
            if position is None or isinstance(position, Variable):
                ids.append(None)
            else:
                term_id = lookup(position)
                if term_id is None:
                    return None
                ids.append(term_id)
        return ids[0], ids[1], ids[2]

    def _decode_triples(self, id_triples: Iterable[IdTriple]) -> Iterator[Triple]:
        decode = self.dictionary.decode
        for s, p, o in id_triples:
            yield Triple(decode(s), decode(p), decode(o))

    def match_ids(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> Iterator[IdTriple]:
        """Iterate encoded ``(s, p, o)`` id triples; ``None`` is a wildcard.

        This is the hot matching path the SPARQL evaluator drives: no
        :class:`Triple` objects are built and every comparison is an int.
        """
        if s is not None and p is not None and o is not None:
            objects = self._spo.get(s, {}).get(p)
            if objects is not None and o in objects:
                return iter(((s, p, o),))
            return iter(())
        if s is not None and p is not None:
            objects = self._spo.get(s, {}).get(p, ())
            return ((s, p, obj) for obj in objects)
        if p is not None and o is not None:
            subjects = self._pos.get(p, {}).get(o, ())
            return ((subj, p, o) for subj in subjects)
        if s is not None and o is not None:
            predicates = self._osp.get(o, {}).get(s, ())
            return ((s, pred, o) for pred in predicates)
        if s is not None:
            return (
                (s, pred, obj)
                for pred, objects in self._spo.get(s, {}).items()
                for obj in objects
            )
        if p is not None:
            return (
                (subj, p, obj)
                for obj, subjects in self._pos.get(p, {}).items()
                for subj in subjects
            )
        if o is not None:
            return (
                (subj, pred, o)
                for subj, predicates in self._osp.get(o, {}).items()
                for pred in predicates
            )
        return (
            (subj, pred, obj)
            for subj, by_predicate in self._spo.items()
            for pred, objects in by_predicate.items()
            for obj in objects
        )

    def match_pattern(self, pattern: TriplePattern) -> Iterator[Triple]:
        """Iterate triples matching a :class:`TriplePattern`."""
        return self.match(pattern.subject, pattern.predicate, pattern.object)

    def count(
        self,
        subject: PatternTerm | None = None,
        predicate: PatternTerm | None = None,
        object: PatternTerm | None = None,
    ) -> int:
        """Number of matching triples.

        Predicate-only counts come straight from the maintained statistics
        (O(1)); other shapes use the id indexes without decoding terms.
        """
        ids = self._encode_positions(subject, predicate, object)
        if ids is None:
            return 0
        s, p, o = ids
        repeated = _repeated_variable_check(subject, predicate, object)
        if repeated is not None:
            return sum(1 for __ in filter(repeated, self.match_ids(s, p, o)))
        return self.count_ids(s, p, o)

    def count_ids(self, s: int | None = None, p: int | None = None, o: int | None = None) -> int:
        """Number of matching id triples (no repeated-variable semantics)."""
        if s is None and o is None:
            if p is None:
                return self._size
            return self._predicate_counts.get(p, 0)
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None and s is None:
            return len(self._pos.get(p, {}).get(o, ()))
        return sum(1 for __ in self.match_ids(s, p, o))

    def ask(
        self,
        subject: PatternTerm | None = None,
        predicate: PatternTerm | None = None,
        object: PatternTerm | None = None,
    ) -> bool:
        """True if at least one triple matches (SPARQL ASK on one pattern)."""
        ids = self._encode_positions(subject, predicate, object)
        if ids is None:
            return False
        s, p, o = ids
        iterator = self.match_ids(s, p, o)
        repeated = _repeated_variable_check(subject, predicate, object)
        if repeated is not None:
            iterator = filter(repeated, iterator)
        return next(iter(iterator), None) is not None

    def ask_ids(self, s: int | None = None, p: int | None = None, o: int | None = None) -> bool:
        """True if at least one id triple matches."""
        return next(iter(self.match_ids(s, p, o)), None) is not None

    # ----------------------------------------------------------- statistics

    def predicates(self) -> set[Term]:
        """All distinct predicates present in the store."""
        decode = self.dictionary.decode
        return {decode(p) for p in self._predicate_counts}

    def predicate_count(self, predicate: Term) -> int:
        p = self.dictionary.lookup(predicate)
        if p is None:
            return 0
        return self._predicate_counts.get(p, 0)

    def distinct_subjects(self, predicate: Term | None = None) -> int:
        if predicate is None:
            return len(self._spo)
        p = self.dictionary.lookup(predicate)
        if p is None:
            return 0
        return len(self._predicate_subjects.get(p, ()))

    def distinct_objects(self, predicate: Term | None = None) -> int:
        if predicate is None:
            return len(self._osp)
        p = self.dictionary.lookup(predicate)
        if p is None:
            return 0
        return len(self._pos.get(p, {}))

    def subject_authorities(self, predicate: Term) -> set[str]:
        """Distinct IRI authorities of subjects of ``predicate``.

        This is the summary HiBISCuS-style source selection builds per
        endpoint.  It walks the incremental distinct-subject statistics,
        decoding each distinct subject exactly once.
        """
        p = self.dictionary.lookup(predicate)
        if p is None:
            return set()
        decode = self.dictionary.decode
        authorities = set()
        for s in self._predicate_subjects.get(p, ()):
            subject = decode(s)
            if isinstance(subject, IRI):
                authorities.add(subject.authority)
        return authorities

    def object_authorities(self, predicate: Term) -> set[str]:
        """Distinct IRI authorities of IRI-valued objects of ``predicate``."""
        p = self.dictionary.lookup(predicate)
        if p is None:
            return set()
        decode = self.dictionary.decode
        authorities = set()
        for o in self._pos.get(p, ()):
            obj = decode(o)
            if isinstance(obj, IRI):
                authorities.add(obj.authority)
        return authorities

    def clear(self) -> None:
        """Drop all triples.  The dictionary is kept: ids stay valid."""
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._predicate_counts.clear()
        self._predicate_subjects.clear()
        self._size = 0
        self.version += 1


def _repeated_variable_check(
    subject: PatternTerm | None,
    predicate: PatternTerm | None,
    object: PatternTerm | None,
) -> Callable[[IdTriple], bool] | None:
    """Consistency filter for patterns repeating a variable, or ``None``.

    Works directly on id triples: ``?x :p ?x`` only matches encoded
    triples whose subject id equals their object id.
    """
    s_var = subject if isinstance(subject, Variable) else None
    p_var = predicate if isinstance(predicate, Variable) else None
    o_var = object if isinstance(object, Variable) else None
    sp = s_var is not None and s_var == p_var
    so = s_var is not None and s_var == o_var
    po = p_var is not None and p_var == o_var
    if not (sp or so or po):
        return None

    def check(id_triple: IdTriple) -> bool:
        s, p, o = id_triple
        if sp and s != p:
            return False
        if so and s != o:
            return False
        if po and p != o:
            return False
        return True

    return check
