"""An indexed in-memory triple store.

This is the storage substrate behind every simulated SPARQL endpoint.  It
maintains three permutation indexes (SPO, POS, OSP) as nested dictionaries,
which lets any triple pattern with at least one bound position be answered
by dictionary lookups rather than scans, mirroring how RDF-3X-style engines
serve basic graph patterns.

Per-predicate statistics (triple counts, distinct subjects/objects) are
maintained incrementally.  The paper notes that "cardinality statistics per
predicate are usually collected by RDF engines for their runtime query
optimization" — SAPE's COUNT probe queries and SPLENDID's VoID index both
read these numbers.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro.rdf.terms import IRI, PatternTerm, Term, Variable
from repro.rdf.triple import Triple, TriplePattern

_Index = dict  # nested: level1 -> level2 -> set(level3)


def _index_add(index: _Index, a: Term, b: Term, c: Term) -> None:
    index.setdefault(a, {}).setdefault(b, set()).add(c)


def _index_remove(index: _Index, a: Term, b: Term, c: Term) -> None:
    second = index.get(a)
    if second is None:
        return
    third = second.get(b)
    if third is None:
        return
    third.discard(c)
    if not third:
        del second[b]
        if not second:
            del index[a]


class TripleStore:
    """A set of triples with SPO / POS / OSP permutation indexes.

    The store deduplicates triples (RDF graphs are sets).  All match
    methods treat a :class:`Variable` or ``None`` in a position as a
    wildcard.
    """

    def __init__(self, name: str = "store"):
        self.name = name
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self._size = 0
        self._predicate_counts: Counter[Term] = Counter()

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        objects = self._spo.get(triple.subject, {}).get(triple.predicate)
        return objects is not None and triple.object in objects

    def __iter__(self) -> Iterator[Triple]:
        for subject, by_predicate in self._spo.items():
            for predicate, objects in by_predicate.items():
                for obj in objects:
                    yield Triple(subject, predicate, obj)

    def __repr__(self) -> str:
        return f"TripleStore({self.name!r}, triples={self._size})"

    # ------------------------------------------------------------------ add

    def add(self, triple: Triple) -> bool:
        """Insert a triple; returns True if it was not already present."""
        if triple in self:
            return False
        s, p, o = triple.subject, triple.predicate, triple.object
        _index_add(self._spo, s, p, o)
        _index_add(self._pos, p, o, s)
        _index_add(self._osp, o, s, p)
        self._size += 1
        self._predicate_counts[p] += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns how many were new."""
        added = 0
        for triple in triples:
            if self.add(triple):
                added += 1
        return added

    def remove(self, triple: Triple) -> bool:
        """Delete a triple; returns True if it was present."""
        if triple not in self:
            return False
        s, p, o = triple.subject, triple.predicate, triple.object
        _index_remove(self._spo, s, p, o)
        _index_remove(self._pos, p, o, s)
        _index_remove(self._osp, o, s, p)
        self._size -= 1
        self._predicate_counts[p] -= 1
        if self._predicate_counts[p] == 0:
            del self._predicate_counts[p]
        return True

    # ---------------------------------------------------------------- match

    def match(
        self,
        subject: PatternTerm | None = None,
        predicate: PatternTerm | None = None,
        object: PatternTerm | None = None,
    ) -> Iterator[Triple]:
        """Iterate triples matching the given positions.

        ``None`` or a :class:`Variable` acts as a wildcard.  Repeated
        variables (e.g. same variable as subject and object) are enforced.
        """
        s = subject if not isinstance(subject, Variable) else None
        p = predicate if not isinstance(predicate, Variable) else None
        o = object if not isinstance(object, Variable) else None

        iterator = self._match_bound(s, p, o)
        # Enforce consistency for repeated variables.
        pattern_vars = [x for x in (subject, predicate, object) if isinstance(x, Variable)]
        if len(pattern_vars) != len(set(pattern_vars)):
            pattern = TriplePattern(
                subject if subject is not None else Variable("__s"),
                predicate if predicate is not None else Variable("__p"),
                object if object is not None else Variable("__o"),
            )
            return (t for t in iterator if pattern.matches(t))
        return iterator

    def _match_bound(self, s: Term | None, p: Term | None, o: Term | None) -> Iterator[Triple]:
        if s is not None and p is not None and o is not None:
            triple = Triple(s, p, o)
            return iter((triple,)) if triple in self else iter(())
        if s is not None and p is not None:
            objects = self._spo.get(s, {}).get(p, ())
            return (Triple(s, p, obj) for obj in objects)
        if p is not None and o is not None:
            subjects = self._pos.get(p, {}).get(o, ())
            return (Triple(subj, p, o) for subj in subjects)
        if s is not None and o is not None:
            predicates = self._osp.get(o, {}).get(s, ())
            return (Triple(s, pred, o) for pred in predicates)
        if s is not None:
            return (
                Triple(s, pred, obj)
                for pred, objects in self._spo.get(s, {}).items()
                for obj in objects
            )
        if p is not None:
            return (
                Triple(subj, p, obj)
                for obj, subjects in self._pos.get(p, {}).items()
                for subj in subjects
            )
        if o is not None:
            return (
                Triple(subj, pred, o)
                for subj, predicates in self._osp.get(o, {}).items()
                for pred in predicates
            )
        return iter(self)

    def match_pattern(self, pattern: TriplePattern) -> Iterator[Triple]:
        """Iterate triples matching a :class:`TriplePattern`."""
        return self.match(pattern.subject, pattern.predicate, pattern.object)

    def count(
        self,
        subject: PatternTerm | None = None,
        predicate: PatternTerm | None = None,
        object: PatternTerm | None = None,
    ) -> int:
        """Number of matching triples.

        Predicate-only counts come straight from the maintained statistics
        (O(1)); other shapes use the indexes without materializing triples.
        """
        s = subject if not isinstance(subject, Variable) else None
        p = predicate if not isinstance(predicate, Variable) else None
        o = object if not isinstance(object, Variable) else None
        if s is None and o is None:
            if p is None:
                return self._size
            return self._predicate_counts.get(p, 0)
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None and s is None:
            return len(self._pos.get(p, {}).get(o, ()))
        return sum(1 for __ in self.match(subject, predicate, object))

    def ask(
        self,
        subject: PatternTerm | None = None,
        predicate: PatternTerm | None = None,
        object: PatternTerm | None = None,
    ) -> bool:
        """True if at least one triple matches (SPARQL ASK on one pattern)."""
        return next(iter(self.match(subject, predicate, object)), None) is not None

    # ----------------------------------------------------------- statistics

    def predicates(self) -> set[Term]:
        """All distinct predicates present in the store."""
        return set(self._predicate_counts)

    def predicate_count(self, predicate: Term) -> int:
        return self._predicate_counts.get(predicate, 0)

    def distinct_subjects(self, predicate: Term | None = None) -> int:
        if predicate is None:
            return len(self._spo)
        return sum(1 for by_pred in self._spo.values() if predicate in by_pred)

    def distinct_objects(self, predicate: Term | None = None) -> int:
        if predicate is None:
            return len(self._osp)
        return len(self._pos.get(predicate, {}))

    def subject_authorities(self, predicate: Term) -> set[str]:
        """Distinct IRI authorities of subjects of ``predicate``.

        This is the summary HiBISCuS-style source selection builds per
        endpoint.
        """
        authorities = set()
        for obj_map in (self._pos.get(predicate) or {}).values():
            for subj in obj_map:
                if isinstance(subj, IRI):
                    authorities.add(subj.authority)
        return authorities

    def object_authorities(self, predicate: Term) -> set[str]:
        """Distinct IRI authorities of IRI-valued objects of ``predicate``."""
        authorities = set()
        for obj in self._pos.get(predicate) or {}:
            if isinstance(obj, IRI):
                authorities.add(obj.authority)
        return authorities

    def clear(self) -> None:
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._predicate_counts.clear()
        self._size = 0
