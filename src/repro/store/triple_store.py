"""An indexed in-memory triple store, dictionary-encoded.

This is the storage substrate behind every simulated SPARQL endpoint.
Like the RDF-3X-style engines it mirrors, the store first maps every term
to a dense integer id through its :class:`~repro.store.dictionary.TermDictionary`
and then maintains three permutation indexes (SPO, POS, OSP) *keyed on
those ids*, which lets any triple pattern with at least one bound position
be answered by integer lookups rather than scans or string re-hashing.

Two index backends implement the same contract:

``backend="sorted"`` (the default) keeps each permutation as a
:class:`~repro.store.sorted_runs.SortedRunIndex` — three parallel
``array('q')`` columns sorted lexicographically, probed with binary
searches.  Every ``match_ids`` result comes back sorted in the probing
permutation's order (see :meth:`TripleStore.match_order`), which is what
lets compiled plans chain merge joins without re-sorting, and bulk loads
build each permutation with one list sort instead of per-row dict churn.

``backend="dict"`` is the original nested dict-of-sets layout, kept as the
property-test oracle: same results, no ordering guarantees, hundreds of
bytes per triple instead of ~tens.

The public API still speaks :class:`~repro.rdf.terms.Term`; the id-space
surface (``match_ids`` / ``count_ids`` / ``ask_ids`` / ``scan_ids`` /
``range_ids`` and the ``dictionary`` attribute) is what the SPARQL
evaluator runs on.  Terms are decoded back only when a caller asks for
:class:`~repro.rdf.triple.Triple` objects.

Per-predicate statistics (triple counts, distinct subjects) are maintained
incrementally in both backends.  The paper notes that "cardinality
statistics per predicate are usually collected by RDF engines for their
runtime query optimization" — SAPE's COUNT probe queries and SPLENDID's
VoID index both read these numbers.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator

from repro.rdf.terms import IRI, PatternTerm, Term, Variable
from repro.rdf.triple import Triple, TriplePattern
from repro.store.dictionary import TermDictionary
from repro.store.sorted_runs import SortedRunIndex

_Index = dict  # nested: level1 id -> level2 id -> set(level3 id)

#: An encoded triple: (subject id, predicate id, object id).
IdTriple = tuple

#: For each (s bound, p bound, o bound) mask: the triple positions a
#: ``match_ids`` iteration is sorted by under the sorted backend, in
#: priority order.  E.g. predicate-bound probes run on POS, so rows come
#: back sorted by object then subject: ``(2, 0)``.
MATCH_ORDERS: dict[tuple[bool, bool, bool], tuple[int, ...]] = {
    (True, True, True): (),
    (True, True, False): (2,),
    (False, True, True): (0,),
    (True, False, True): (1,),
    (True, False, False): (1, 2),
    (False, True, False): (2, 0),
    (False, False, True): (0, 1),
    (False, False, False): (0, 1, 2),
}


def _index_add(index: _Index, a: int, b: int, c: int) -> None:
    index.setdefault(a, {}).setdefault(b, set()).add(c)


def _index_remove(index: _Index, a: int, b: int, c: int) -> None:
    second = index.get(a)
    if second is None:
        return
    third = second.get(b)
    if third is None:
        return
    third.discard(c)
    if not third:
        del second[b]
        if not second:
            del index[a]


class _DictIndexes:
    """Nested dict-of-sets permutation indexes (the oracle backend)."""

    kind = "dict"

    __slots__ = ("_spo", "_pos", "_osp")

    def __init__(self) -> None:
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}

    def add(self, s: int, p: int, o: int) -> None:
        _index_add(self._spo, s, p, o)
        _index_add(self._pos, p, o, s)
        _index_add(self._osp, o, s, p)

    def remove(self, s: int, p: int, o: int) -> None:
        _index_remove(self._spo, s, p, o)
        _index_remove(self._pos, p, o, s)
        _index_remove(self._osp, o, s, p)

    def contains(self, s: int, p: int, o: int) -> bool:
        objects = self._spo.get(s, {}).get(p)
        return objects is not None and o in objects

    def clear(self) -> None:
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()

    def match_ids(self, s: int | None, p: int | None, o: int | None) -> Iterator[IdTriple]:
        if s is not None and p is not None and o is not None:
            if self.contains(s, p, o):
                return iter(((s, p, o),))
            return iter(())
        if s is not None and p is not None:
            objects = self._spo.get(s, {}).get(p, ())
            return ((s, p, obj) for obj in objects)
        if p is not None and o is not None:
            subjects = self._pos.get(p, {}).get(o, ())
            return ((subj, p, o) for subj in subjects)
        if s is not None and o is not None:
            predicates = self._osp.get(o, {}).get(s, ())
            return ((s, pred, o) for pred in predicates)
        if s is not None:
            return (
                (s, pred, obj)
                for pred, objects in self._spo.get(s, {}).items()
                for obj in objects
            )
        if p is not None:
            return (
                (subj, p, obj)
                for obj, subjects in self._pos.get(p, {}).items()
                for subj in subjects
            )
        if o is not None:
            return (
                (subj, pred, o)
                for subj, predicates in self._osp.get(o, {}).items()
                for pred in predicates
            )
        return self.iter_spo()

    def iter_spo(self) -> Iterator[IdTriple]:
        return (
            (subj, pred, obj)
            for subj, by_predicate in self._spo.items()
            for pred, objects in by_predicate.items()
            for obj in objects
        )

    def count_ids(self, s: int | None, p: int | None, o: int | None) -> int:
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None and s is None:
            return len(self._pos.get(p, {}).get(o, ()))
        return sum(1 for __ in self.match_ids(s, p, o))

    def match_order(self, s_bound: bool, p_bound: bool, o_bound: bool) -> None:
        return None

    def scan_rows(self, order: str) -> Iterator[IdTriple]:
        rows = list(self.iter_spo())
        if order == "spo":
            rows.sort()
        elif order == "pos":
            rows.sort(key=lambda row: (row[1], row[2], row[0]))
        else:
            rows.sort(key=lambda row: (row[2], row[0], row[1]))
        return iter(rows)

    def distinct_subjects_all(self) -> int:
        return len(self._spo)

    def distinct_objects_all(self) -> int:
        return len(self._osp)

    def distinct_objects_of(self, p: int) -> int:
        return len(self._pos.get(p, {}))

    def iter_object_ids_of(self, p: int) -> Iterator[int]:
        return iter(self._pos.get(p, ()))

    def nbytes(self) -> None:
        return None

    def compact(self) -> None:
        return None


class _SortedIndexes:
    """Sorted-run ``array('q')`` permutation indexes (the default backend)."""

    kind = "sorted"

    __slots__ = ("spo", "pos", "osp")

    def __init__(self) -> None:
        self.spo = SortedRunIndex()
        self.pos = SortedRunIndex()
        self.osp = SortedRunIndex()

    def add(self, s: int, p: int, o: int) -> None:
        self.spo.add((s, p, o))
        self.pos.add((p, o, s))
        self.osp.add((o, s, p))

    def remove(self, s: int, p: int, o: int) -> None:
        self.spo.remove((s, p, o))
        self.pos.remove((p, o, s))
        self.osp.remove((o, s, p))

    def contains(self, s: int, p: int, o: int) -> bool:
        return self.spo.contains((s, p, o))

    def clear(self) -> None:
        self.spo.clear()
        self.pos.clear()
        self.osp.clear()

    def bulk_add(self, spo_rows: list[IdTriple]) -> None:
        """Merge new rows (sorted by (s, p, o), deduped, all fresh)."""
        self.spo.bulk_insert(spo_rows)
        self.pos.bulk_insert(sorted((p, o, s) for s, p, o in spo_rows))
        self.osp.bulk_insert(sorted((o, s, p) for s, p, o in spo_rows))

    def match_ids(self, s: int | None, p: int | None, o: int | None) -> Iterator[IdTriple]:
        if s is not None:
            if p is not None:
                if o is not None:
                    if self.spo.contains((s, p, o)):
                        return iter(((s, p, o),))
                    return iter(())
                return ((s, p, obj) for obj in self.spo.thirds(s, p))
            if o is not None:
                return ((s, pred, o) for pred in self.osp.thirds(o, s))
            return self.spo.iter_prefix((s,))
        if p is not None:
            if o is not None:
                return ((subj, p, o) for subj in self.pos.thirds(p, o))
            return ((row[2], p, row[1]) for row in self.pos.iter_prefix((p,)))
        if o is not None:
            return ((row[1], row[2], o) for row in self.osp.iter_prefix((o,)))
        return self.spo.iter_prefix(())

    def iter_spo(self) -> Iterator[IdTriple]:
        return self.spo.iter_prefix(())

    def count_ids(self, s: int | None, p: int | None, o: int | None) -> int:
        if s is not None:
            if p is not None:
                if o is not None:
                    return 1 if self.spo.contains((s, p, o)) else 0
                return self.spo.count_prefix((s, p))
            if o is not None:
                return self.osp.count_prefix((o, s))
            return self.spo.count_prefix((s,))
        if p is not None:
            if o is not None:
                return self.pos.count_prefix((p, o))
            return self.pos.count_prefix((p,))
        if o is not None:
            return self.osp.count_prefix((o,))
        return len(self.spo)

    def match_order(self, s_bound: bool, p_bound: bool, o_bound: bool) -> tuple[int, ...]:
        return MATCH_ORDERS[(s_bound, p_bound, o_bound)]

    def scan_rows(self, order: str) -> Iterator[IdTriple]:
        if order == "spo":
            return self.spo.iter_prefix(())
        if order == "pos":
            return ((row[2], row[0], row[1]) for row in self.pos.iter_prefix(()))
        return ((row[1], row[2], row[0]) for row in self.osp.iter_prefix(()))

    def distinct_subjects_all(self) -> int:
        return self.spo.distinct_firsts()

    def distinct_objects_all(self) -> int:
        return self.osp.distinct_firsts()

    def distinct_objects_of(self, p: int) -> int:
        return self.pos.distinct_seconds(p)

    def iter_object_ids_of(self, p: int) -> Iterator[int]:
        return self.pos.iter_distinct_seconds(p)

    def nbytes(self) -> int:
        return self.spo.nbytes() + self.pos.nbytes() + self.osp.nbytes()

    def compact(self) -> None:
        self.spo.flush()
        self.pos.flush()
        self.osp.flush()


class TripleStore:
    """A set of triples with id-keyed SPO / POS / OSP permutation indexes.

    The store deduplicates triples (RDF graphs are sets).  All match
    methods treat a :class:`Variable` or ``None`` in a position as a
    wildcard.
    """

    def __init__(
        self,
        name: str = "store",
        dictionary: TermDictionary | None = None,
        backend: str = "sorted",
    ):
        self.name = name
        #: The per-endpoint term dictionary.  Ids are stable for the
        #: lifetime of the store (``clear`` empties the indexes but keeps
        #: the dictionary, so cached encodings stay valid).
        self.dictionary = dictionary if dictionary is not None else TermDictionary()
        if backend == "sorted":
            self._idx: _SortedIndexes | _DictIndexes = _SortedIndexes()
        elif backend == "dict":
            self._idx = _DictIndexes()
        else:
            raise ValueError(f"unknown TripleStore backend {backend!r}")
        self.backend = backend
        self._size = 0
        #: Data version, bumped on every mutation (add/remove/clear).
        #: Compiled plans (:mod:`repro.sparql.plan`) are pinned to the
        #: version they were built against: their pattern order and
        #: statistics-driven choices are only valid while the data —
        #: and hence the statistics — are unchanged.
        self.version = 0
        self._predicate_counts: Counter[int] = Counter()
        # Incremental distinct-subject statistics: predicate id ->
        # {subject id: number of triples with that (subject, predicate)}.
        # distinct_subjects(p) is then an O(1) len() instead of the full
        # SPO scan it used to be.
        self._predicate_subjects: dict[int, dict[int, int]] = {}
        # Derived statistics that cost a scan under the sorted backend
        # (store-wide distinct subjects/objects, distinct objects per
        # predicate), memoized per data version.
        self._stats_cache: dict = {}

    def _bump(self) -> None:
        self.version += 1
        self._stats_cache.clear()

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        lookup = self.dictionary.lookup
        s = lookup(triple.subject)
        if s is None:
            return False
        p = lookup(triple.predicate)
        if p is None:
            return False
        o = lookup(triple.object)
        if o is None:
            return False
        return self._idx.contains(s, p, o)

    def __iter__(self) -> Iterator[Triple]:
        decode = self.dictionary.decode
        for s, p, o in self._idx.iter_spo():
            yield Triple(decode(s), decode(p), decode(o))

    def __repr__(self) -> str:
        return f"TripleStore({self.name!r}, triples={self._size})"

    # ------------------------------------------------------------------ add

    def add(self, triple: Triple) -> bool:
        """Insert a triple; returns True if it was not already present."""
        encode = self.dictionary.encode
        s = encode(triple.subject)
        p = encode(triple.predicate)
        o = encode(triple.object)
        if self._idx.contains(s, p, o):
            return False
        self._idx.add(s, p, o)
        self._size += 1
        self._bump()
        self._predicate_counts[p] += 1
        subjects = self._predicate_subjects.setdefault(p, {})
        subjects[s] = subjects.get(s, 0) + 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns how many were new.

        Under the sorted backend this is the bulk-load fast path: encode
        everything, sort/dedupe once, and merge each permutation in one
        pass — no per-row index maintenance.
        """
        idx = self._idx
        if idx.kind != "sorted":
            added = 0
            for triple in triples:
                if self.add(triple):
                    added += 1
            return added
        encode = self.dictionary.encode
        rows = sorted(
            {
                (encode(triple.subject), encode(triple.predicate), encode(triple.object))
                for triple in triples
            }
        )
        contains = idx.contains
        fresh = [row for row in rows if not contains(*row)]
        if not fresh:
            return 0
        idx.bulk_add(fresh)
        counts = self._predicate_counts
        subjects_by_predicate = self._predicate_subjects
        for s, p, __ in fresh:
            counts[p] += 1
            subjects = subjects_by_predicate.setdefault(p, {})
            subjects[s] = subjects.get(s, 0) + 1
        self._size += len(fresh)
        self._bump()
        return len(fresh)

    def remove(self, triple: Triple) -> bool:
        """Delete a triple; returns True if it was present."""
        if triple not in self:
            return False
        lookup = self.dictionary.lookup
        s = lookup(triple.subject)
        p = lookup(triple.predicate)
        o = lookup(triple.object)
        self._idx.remove(s, p, o)
        self._size -= 1
        self._bump()
        self._predicate_counts[p] -= 1
        if self._predicate_counts[p] == 0:
            del self._predicate_counts[p]
        subjects = self._predicate_subjects[p]
        subjects[s] -= 1
        if subjects[s] == 0:
            del subjects[s]
            if not subjects:
                del self._predicate_subjects[p]
        return True

    # ---------------------------------------------------------------- match

    def match(
        self,
        subject: PatternTerm | None = None,
        predicate: PatternTerm | None = None,
        object: PatternTerm | None = None,
    ) -> Iterator[Triple]:
        """Iterate triples matching the given positions.

        ``None`` or a :class:`Variable` acts as a wildcard.  Repeated
        variables (e.g. same variable as subject and object) are enforced.
        """
        ids = self._encode_positions(subject, predicate, object)
        if ids is None:
            return iter(())
        s, p, o = ids
        iterator = self.match_ids(s, p, o)
        repeated = _repeated_variable_check(subject, predicate, object)
        if repeated is not None:
            iterator = filter(repeated, iterator)
        return self._decode_triples(iterator)

    def _encode_positions(
        self,
        subject: PatternTerm | None,
        predicate: PatternTerm | None,
        object: PatternTerm | None,
    ) -> tuple[int | None, int | None, int | None] | None:
        """Bound positions -> ids; ``None`` result means "cannot match"."""
        lookup = self.dictionary.lookup
        ids = []
        for position in (subject, predicate, object):
            if position is None or isinstance(position, Variable):
                ids.append(None)
            else:
                term_id = lookup(position)
                if term_id is None:
                    return None
                ids.append(term_id)
        return ids[0], ids[1], ids[2]

    def _decode_triples(self, id_triples: Iterable[IdTriple]) -> Iterator[Triple]:
        decode = self.dictionary.decode
        for s, p, o in id_triples:
            yield Triple(decode(s), decode(p), decode(o))

    def match_ids(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> Iterator[IdTriple]:
        """Iterate encoded ``(s, p, o)`` id triples; ``None`` is a wildcard.

        This is the hot matching path the SPARQL evaluator drives: no
        :class:`Triple` objects are built and every comparison is an int.
        Under the sorted backend the iteration is additionally *sorted* in
        the probing permutation's order — see :meth:`match_order`.
        """
        return self._idx.match_ids(s, p, o)

    def match_order(
        self, s_bound: bool = False, p_bound: bool = False, o_bound: bool = False
    ) -> tuple[int, ...] | None:
        """Triple positions a ``match_ids`` iteration is sorted by, or None.

        For a pattern with the given bound positions, returns the unbound
        triple positions (0=subject, 1=predicate, 2=object) in sort
        priority order — e.g. predicate-bound probes run on POS, so rows
        arrive sorted by object then subject: ``(2, 0)``.  ``None`` means
        the backend makes no ordering promise (the dict oracle).  Compiled
        plans read this to carry sort-order metadata through probe
        pipelines.
        """
        return self._idx.match_order(s_bound, p_bound, o_bound)

    def scan_ids(self, order: str = "spo") -> Iterator[IdTriple]:
        """Full scan of ``(s, p, o)`` id triples sorted by a permutation.

        ``order`` is one of ``"spo"``, ``"pos"``, ``"osp"``.  The sorted
        backend streams straight off the corresponding run; the dict
        oracle materializes and sorts, so both backends yield identical
        sequences.
        """
        if order not in ("spo", "pos", "osp"):
            raise ValueError(f"unknown scan order {order!r}")
        return self._idx.scan_rows(order)

    def range_ids(
        self, s: int | None = None, p: int | None = None, o: int | None = None
    ) -> list[IdTriple]:
        """Matching id triples as a list sorted by :meth:`match_order`.

        Unlike :meth:`match_ids`, the ordering is guaranteed on *both*
        backends (the dict oracle sorts the materialized rows), so callers
        that need deterministic sorted ranges — merge-join feeds, the
        property oracle — can use either interchangeably.
        """
        mask = (s is not None, p is not None, o is not None)
        rows = self._idx.match_ids(s, p, o)
        if self._idx.match_order(*mask) is not None:
            return list(rows)
        priority = MATCH_ORDERS[mask]
        return sorted(rows, key=lambda row: tuple(row[i] for i in priority))

    def match_pattern(self, pattern: TriplePattern) -> Iterator[Triple]:
        """Iterate triples matching a :class:`TriplePattern`."""
        return self.match(pattern.subject, pattern.predicate, pattern.object)

    def count(
        self,
        subject: PatternTerm | None = None,
        predicate: PatternTerm | None = None,
        object: PatternTerm | None = None,
    ) -> int:
        """Number of matching triples.

        Predicate-only counts come straight from the maintained statistics
        (O(1)); other shapes use the id indexes without decoding terms.
        """
        ids = self._encode_positions(subject, predicate, object)
        if ids is None:
            return 0
        s, p, o = ids
        repeated = _repeated_variable_check(subject, predicate, object)
        if repeated is not None:
            return sum(1 for __ in filter(repeated, self.match_ids(s, p, o)))
        return self.count_ids(s, p, o)

    def count_ids(self, s: int | None = None, p: int | None = None, o: int | None = None) -> int:
        """Number of matching id triples (no repeated-variable semantics).

        Statistics shapes are O(1); under the sorted backend every other
        shape is a pair of binary searches per bound level rather than an
        iteration.
        """
        if s is None and o is None:
            if p is None:
                return self._size
            return self._predicate_counts.get(p, 0)
        return self._idx.count_ids(s, p, o)

    def ask(
        self,
        subject: PatternTerm | None = None,
        predicate: PatternTerm | None = None,
        object: PatternTerm | None = None,
    ) -> bool:
        """True if at least one triple matches (SPARQL ASK on one pattern)."""
        ids = self._encode_positions(subject, predicate, object)
        if ids is None:
            return False
        s, p, o = ids
        iterator = self.match_ids(s, p, o)
        repeated = _repeated_variable_check(subject, predicate, object)
        if repeated is not None:
            iterator = filter(repeated, iterator)
        return next(iter(iterator), None) is not None

    def ask_ids(self, s: int | None = None, p: int | None = None, o: int | None = None) -> bool:
        """True if at least one id triple matches."""
        return next(iter(self.match_ids(s, p, o)), None) is not None

    # ----------------------------------------------------------- statistics

    def predicates(self) -> set[Term]:
        """All distinct predicates present in the store."""
        decode = self.dictionary.decode
        return {decode(p) for p in self._predicate_counts}

    def predicate_count(self, predicate: Term) -> int:
        p = self.dictionary.lookup(predicate)
        if p is None:
            return 0
        return self._predicate_counts.get(p, 0)

    def distinct_subjects(self, predicate: Term | None = None) -> int:
        if predicate is None:
            cached = self._stats_cache.get("distinct_subjects")
            if cached is None:
                cached = self._idx.distinct_subjects_all()
                self._stats_cache["distinct_subjects"] = cached
            return cached
        p = self.dictionary.lookup(predicate)
        if p is None:
            return 0
        return len(self._predicate_subjects.get(p, ()))

    def distinct_objects(self, predicate: Term | None = None) -> int:
        if predicate is None:
            cached = self._stats_cache.get("distinct_objects")
            if cached is None:
                cached = self._idx.distinct_objects_all()
                self._stats_cache["distinct_objects"] = cached
            return cached
        p = self.dictionary.lookup(predicate)
        if p is None:
            return 0
        key = ("distinct_objects_of", p)
        cached = self._stats_cache.get(key)
        if cached is None:
            cached = self._idx.distinct_objects_of(p)
            self._stats_cache[key] = cached
        return cached

    def subject_authorities(self, predicate: Term) -> set[str]:
        """Distinct IRI authorities of subjects of ``predicate``.

        This is the summary HiBISCuS-style source selection builds per
        endpoint.  It walks the incremental distinct-subject statistics,
        decoding each distinct subject exactly once.
        """
        p = self.dictionary.lookup(predicate)
        if p is None:
            return set()
        decode = self.dictionary.decode
        authorities = set()
        for s in self._predicate_subjects.get(p, ()):
            subject = decode(s)
            if isinstance(subject, IRI):
                authorities.add(subject.authority)
        return authorities

    def object_authorities(self, predicate: Term) -> set[str]:
        """Distinct IRI authorities of IRI-valued objects of ``predicate``."""
        p = self.dictionary.lookup(predicate)
        if p is None:
            return set()
        decode = self.dictionary.decode
        authorities = set()
        for o in self._idx.iter_object_ids_of(p):
            obj = decode(o)
            if isinstance(obj, IRI):
                authorities.add(obj.authority)
        return authorities

    # -------------------------------------------------------------- storage

    def index_nbytes(self) -> int | None:
        """Bytes held by the permutation index columns (sorted backend).

        ``None`` under the dict backend, whose nested containers have no
        cheap exact size.  Benchmarks report this as bytes-per-triple.
        """
        return self._idx.nbytes()

    def compact(self) -> None:
        """Flush tail/tombstone deltas into the sorted runs (no-op on dict).

        Results are unchanged; this just restores the pure-run fast paths
        after a burst of incremental mutations.  Does not bump the data
        version — compaction is not a visible mutation.
        """
        self._idx.compact()

    def clear(self) -> None:
        """Drop all triples.  The dictionary is kept: ids stay valid."""
        self._idx.clear()
        self._predicate_counts.clear()
        self._predicate_subjects.clear()
        self._size = 0
        self._bump()


def _repeated_variable_check(
    subject: PatternTerm | None,
    predicate: PatternTerm | None,
    object: PatternTerm | None,
) -> Callable[[IdTriple], bool] | None:
    """Consistency filter for patterns repeating a variable, or ``None``.

    Works directly on id triples: ``?x :p ?x`` only matches encoded
    triples whose subject id equals their object id.
    """
    s_var = subject if isinstance(subject, Variable) else None
    p_var = predicate if isinstance(predicate, Variable) else None
    o_var = object if isinstance(object, Variable) else None
    sp = s_var is not None and s_var == p_var
    so = s_var is not None and s_var == o_var
    po = p_var is not None and p_var == o_var
    if not (sp or so or po):
        return None

    def check(id_triple: IdTriple) -> bool:
        s, p, o = id_triple
        if sp and s != p:
            return False
        if so and s != o:
            return False
        if po and p != o:
            return False
        return True

    return check
