"""In-memory indexed triple store and its term dictionary."""

from repro.store.dictionary import TermDictionary
from repro.store.digests import JoinDigestIndex, stable_term_hash
from repro.store.sorted_runs import SortedRunIndex
from repro.store.triple_store import MATCH_ORDERS, TripleStore

__all__ = [
    "JoinDigestIndex",
    "MATCH_ORDERS",
    "SortedRunIndex",
    "TermDictionary",
    "TripleStore",
    "stable_term_hash",
]
