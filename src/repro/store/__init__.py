"""In-memory indexed triple store."""

from repro.store.triple_store import TripleStore

__all__ = ["TripleStore"]
