"""In-memory indexed triple store and its term dictionary."""

from repro.store.dictionary import TermDictionary
from repro.store.sorted_runs import SortedRunIndex
from repro.store.triple_store import MATCH_ORDERS, TripleStore

__all__ = ["MATCH_ORDERS", "SortedRunIndex", "TermDictionary", "TripleStore"]
