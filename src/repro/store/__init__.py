"""In-memory indexed triple store and its term dictionary."""

from repro.store.dictionary import TermDictionary
from repro.store.triple_store import TripleStore

__all__ = ["TermDictionary", "TripleStore"]
