"""Characteristic-set statistics for a single endpoint's store.

Odyssey-style characteristic sets summarize a graph by grouping subjects
on the *set of predicates* they carry (extended here with the subject's
``rdf:type`` classes, as in Lothbrok's fragment summaries): the summary
records, per distinct predicate/class set, how many subjects share it,
plus per-predicate tallies (triple count, distinct subjects/objects, an
exact per-object histogram for low-cardinality predicates) and the
characteristic-*pair* tables that power join fan-out estimation and
check-query answering:

``os_pairs[(p1, p2)]``
    number of entities that appear as an *object* of ``p1`` and as a
    *subject* of ``p2`` (the path-join coverage table);
``oo_pairs[(p1, p2)]``
    number of entities appearing as objects of both predicates;
``ss_rows / os_rows / oo_rows``
    exact two-pattern join row counts ``sum_e c(e, p1) * c(e, p2)``
    where ``c`` counts the entity's triples in the respective role
    (the predicate-pair join fan-outs).

The summary is computed from the id-space sorted-run columns (three
``scan_ids`` permutation passes, grouping in id space and decoding each
id once), persists to JSON (:meth:`CharacteristicSets.to_dict`), and is
incrementally maintained by :class:`CharsetMaintainer` under the store's
``version`` counter with a recompute-on-threshold delta policy: small
deltas recorded through the owning endpoint are applied in place (kept
provably identical to a fresh rebuild by the property tests), bulk loads
and out-of-band store mutations trigger a full recompute.

Everything in the summary is *exact at its version*; the provider layer
(:mod:`repro.planning.stats`) only makes pruning decisions that are
sound for exact summaries and falls back to remote probes otherwise.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.rdf.namespaces import RDF_TYPE
from repro.rdf.terms import BNode, IRI, Literal, Term, Variable, is_concrete

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.rdf.triples import Triple
    from repro.sparql.ast import TriplePattern
    from repro.store.triple_store import TripleStore

#: Predicates whose distinct-object count is at or below this keep an
#: exact per-object histogram, making ``(?s, p, o)`` estimates and
#: ``can_match`` verdicts exact (``rdf:type`` on every dataset we ship).
DEFAULT_OBJECT_HISTOGRAM_LIMIT = 256

#: Elements of a characteristic set: a predicate term, or a
#: ``("class", C)`` marker recording that the subject has rdf:type C.
Element = "Term | tuple[str, Term]"


def class_marker(cls: Term) -> tuple[str, Term]:
    return ("class", cls)


def _is_predicate(element) -> bool:
    return isinstance(element, Term)


@dataclass
class PredicateStats:
    """Per-predicate tallies; ``objects`` is the exact histogram or None."""

    count: int
    distinct_subjects: int
    distinct_objects: int
    objects: dict[Term, int] | None

    def copy(self) -> "PredicateStats":
        return PredicateStats(
            self.count,
            self.distinct_subjects,
            self.distinct_objects,
            dict(self.objects) if self.objects is not None else None,
        )


class CharacteristicSets:
    """One endpoint's characteristic-set summary, exact at ``version``."""

    __slots__ = (
        "version",
        "triples",
        "distinct_subjects",
        "distinct_objects",
        "predicates",
        "sets",
        "os_pairs",
        "oo_pairs",
        "ss_rows",
        "os_rows",
        "oo_rows",
    )

    def __init__(
        self,
        version: int,
        triples: int,
        distinct_subjects: int,
        distinct_objects: int,
        predicates: dict[Term, PredicateStats],
        sets: dict[frozenset, int],
        os_pairs: dict[tuple[Term, Term], int],
        oo_pairs: dict[tuple[Term, Term], int],
        ss_rows: dict[tuple[Term, Term], int],
        os_rows: dict[tuple[Term, Term], int],
        oo_rows: dict[tuple[Term, Term], int],
    ):
        self.version = version
        self.triples = triples
        self.distinct_subjects = distinct_subjects
        self.distinct_objects = distinct_objects
        self.predicates = predicates
        self.sets = sets
        self.os_pairs = os_pairs
        self.oo_pairs = oo_pairs
        self.ss_rows = ss_rows
        self.os_rows = os_rows
        self.oo_rows = oo_rows

    def __repr__(self) -> str:
        return (
            f"CharacteristicSets(version={self.version}, triples={self.triples}, "
            f"predicates={len(self.predicates)}, sets={len(self.sets)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CharacteristicSets):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    # ------------------------------------------------------- local queries

    def _repeated(self, pattern: "TriplePattern") -> bool:
        s, p, o = pattern.subject, pattern.predicate, pattern.object
        return (
            (isinstance(s, Variable) and (s == p or s == o))
            or (isinstance(p, Variable) and p == o)
        )

    def can_match(self, pattern: "TriplePattern") -> bool | None:
        """Exact triple-pattern matchability, or None when unprovable.

        A True/False answer here is equivalent to what an ASK probe would
        return against the store at this summary's version; ``None``
        means the caller must fall back to the probe.
        """
        if self.triples == 0:
            return False
        if self._repeated(pattern):
            return None
        s, p, o = pattern.subject, pattern.predicate, pattern.object
        if is_concrete(p):
            stats = self.predicates.get(p)
            if stats is None or stats.count == 0:
                return False
            if is_concrete(s):
                return None
            if is_concrete(o):
                if stats.objects is not None:
                    return o in stats.objects
                return None
            return True
        if not is_concrete(s) and not is_concrete(o):
            return True
        return None

    def estimate_pattern(self, pattern: "TriplePattern") -> tuple[float, bool]:
        """(estimated matching triples, is_exact) for one pattern."""
        if self.triples == 0:
            return 0.0, True
        repeated = self._repeated(pattern)
        s, p, o = pattern.subject, pattern.predicate, pattern.object
        s_c, p_c, o_c = is_concrete(s), is_concrete(p), is_concrete(o)
        if p_c:
            stats = self.predicates.get(p)
            if stats is None:
                return 0.0, True
            if not s_c and not o_c:
                return float(stats.count), not repeated
            if o_c and not s_c:
                if stats.objects is not None:
                    return float(stats.objects.get(o, 0)), True
                return stats.count / max(1, stats.distinct_objects), False
            if s_c and not o_c:
                return stats.count / max(1, stats.distinct_subjects), False
            return 1.0, False
        if not s_c and not o_c:
            return float(self.triples), not repeated
        if s_c and not o_c:
            return self.triples / max(1, self.distinct_subjects), False
        if o_c and not s_c:
            return self.triples / max(1, self.distinct_objects), False
        return 1.0, False

    # -------------------------------------------------- charset coverage

    def charset_exists(self, required: frozenset, lacking=None) -> bool:
        """Is there a populated charset containing ``required`` (and, when
        ``lacking`` is given, *not* containing that element)?"""
        for charset, count in self.sets.items():
            if count <= 0 or not required <= charset:
                continue
            if lacking is None or lacking not in charset:
                return True
        return False

    def subjects_with(self, required: frozenset) -> int:
        """Number of subjects whose charset contains every required element."""
        return sum(
            count for charset, count in self.sets.items() if required <= charset
        )

    # ------------------------------------------------------- persistence

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "triples": self.triples,
            "distinct_subjects": self.distinct_subjects,
            "distinct_objects": self.distinct_objects,
            "predicates": [
                [
                    _term_to_json(p),
                    stats.count,
                    stats.distinct_subjects,
                    stats.distinct_objects,
                    None
                    if stats.objects is None
                    else sorted(
                        ([_term_to_json(o), n] for o, n in stats.objects.items()),
                        key=lambda item: repr(item[0]),
                    ),
                ]
                for p, stats in sorted(
                    self.predicates.items(), key=lambda item: item[0].sort_key()
                )
            ],
            "sets": sorted(
                (
                    [sorted((_element_to_json(e) for e in charset), key=repr), count]
                    for charset, count in self.sets.items()
                ),
                key=lambda item: repr(item[0]),
            ),
            "os_pairs": _pairs_to_json(self.os_pairs),
            "oo_pairs": _pairs_to_json(self.oo_pairs),
            "ss_rows": _pairs_to_json(self.ss_rows),
            "os_rows": _pairs_to_json(self.os_rows),
            "oo_rows": _pairs_to_json(self.oo_rows),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CharacteristicSets":
        predicates: dict[Term, PredicateStats] = {}
        for p_json, count, ds, do, objects in data["predicates"]:
            histogram = (
                None
                if objects is None
                else {_term_from_json(o): n for o, n in objects}
            )
            predicates[_term_from_json(p_json)] = PredicateStats(count, ds, do, histogram)
        return cls(
            version=data["version"],
            triples=data["triples"],
            distinct_subjects=data["distinct_subjects"],
            distinct_objects=data["distinct_objects"],
            predicates=predicates,
            sets={
                frozenset(_element_from_json(e) for e in elements): count
                for elements, count in data["sets"]
            },
            os_pairs=_pairs_from_json(data["os_pairs"]),
            oo_pairs=_pairs_from_json(data["oo_pairs"]),
            ss_rows=_pairs_from_json(data["ss_rows"]),
            os_rows=_pairs_from_json(data["os_rows"]),
            oo_rows=_pairs_from_json(data["oo_rows"]),
        )

    def approx_bytes(self) -> int:
        """Deterministic size estimate used as the virtual response payload."""
        entries = (
            4 * len(self.predicates)
            + sum(len(stats.objects) for stats in self.predicates.values() if stats.objects)
            + sum(len(charset) + 1 for charset in self.sets)
            + 3 * (len(self.os_pairs) + len(self.oo_pairs))
            + 3 * (len(self.ss_rows) + len(self.os_rows) + len(self.oo_rows))
        )
        return 64 + 24 * entries


# ------------------------------------------------------------ term codec


def _term_to_json(term: Term) -> list:
    if isinstance(term, IRI):
        return ["i", term.value]
    if isinstance(term, Literal):
        return ["l", term.value, term.datatype, term.language]
    if isinstance(term, BNode):
        return ["b", term.label]
    raise TypeError(f"not a serializable term: {term!r}")


def _term_from_json(data: list) -> Term:
    tag = data[0]
    if tag == "i":
        return IRI(data[1])
    if tag == "l":
        return Literal(data[1], datatype=data[2], language=data[3])
    if tag == "b":
        return BNode(data[1])
    raise ValueError(f"unknown term tag: {tag!r}")


def _element_to_json(element) -> list:
    if _is_predicate(element):
        return _term_to_json(element)
    return ["c", _term_to_json(element[1])]


def _element_from_json(data: list):
    if data[0] == "c":
        return class_marker(_term_from_json(data[1]))
    return _term_from_json(data)


def _pairs_to_json(table: dict[tuple[Term, Term], int]) -> list:
    return sorted(
        ([_term_to_json(a), _term_to_json(b), n] for (a, b), n in table.items()),
        key=lambda item: (repr(item[0]), repr(item[1])),
    )


def _pairs_from_json(data: list) -> dict[tuple[Term, Term], int]:
    return {(_term_from_json(a), _term_from_json(b)): n for a, b, n in data}


# ---------------------------------------------------------------- build


def build_charsets(
    store: "TripleStore",
    object_histogram_limit: int = DEFAULT_OBJECT_HISTOGRAM_LIMIT,
) -> CharacteristicSets:
    """Compute the full summary from the store's id-space columns."""
    dictionary = store.dictionary
    decode = dictionary.decode
    decoded: dict[int, Term] = {}

    def term(term_id: int) -> Term:
        cached = decoded.get(term_id)
        if cached is None:
            cached = decoded[term_id] = decode(term_id)
        return cached

    type_id = dictionary.lookup(RDF_TYPE)

    # Pass 1 (spo order): subject-grouped predicate/class multisets.
    subj: dict[int, Counter] = {}
    for s, p, o in store.scan_ids("spo"):
        counter = subj.get(s)
        if counter is None:
            counter = subj[s] = Counter()
        counter[p] += 1
        if p == type_id:
            counter[("c", o)] += 1

    # Pass 2 (pos order): per-predicate exact object histograms.
    histograms: dict[int, dict[int, int] | None] = {}
    for s, p, o in store.scan_ids("pos"):
        histogram = histograms.get(p, _ABSENT)
        if histogram is None:
            continue
        if histogram is _ABSENT:
            histogram = histograms[p] = {}
        histogram[o] = histogram.get(o, 0) + 1
        if len(histogram) > object_histogram_limit:
            histograms[p] = None

    # Pass 3 (osp order): object-grouped predicate multisets.
    obj: dict[int, Counter] = {}
    for s, p, o in store.scan_ids("osp"):
        counter = obj.get(o)
        if counter is None:
            counter = obj[o] = Counter()
        counter[p] += 1

    sets: dict[frozenset, int] = {}
    for counter in subj.values():
        charset = frozenset(
            term(e) if not isinstance(e, tuple) else class_marker(term(e[1]))
            for e in counter
        )
        sets[charset] = sets.get(charset, 0) + 1

    os_pairs: dict[tuple[Term, Term], int] = {}
    oo_pairs: dict[tuple[Term, Term], int] = {}
    ss_rows: dict[tuple[Term, Term], int] = {}
    os_rows: dict[tuple[Term, Term], int] = {}
    oo_rows: dict[tuple[Term, Term], int] = {}
    for entity in subj.keys() | obj.keys():
        subject_preds = [
            (term(p), n) for p, n in subj.get(entity, _EMPTY).items() if not isinstance(p, tuple)
        ]
        object_preds = [(term(p), n) for p, n in obj.get(entity, _EMPTY).items()]
        for p1, n1 in subject_preds:
            for p2, n2 in subject_preds:
                key = (p1, p2)
                ss_rows[key] = ss_rows.get(key, 0) + n1 * n2
        for p1, n1 in object_preds:
            for p2, n2 in subject_preds:
                key = (p1, p2)
                os_pairs[key] = os_pairs.get(key, 0) + 1
                os_rows[key] = os_rows.get(key, 0) + n1 * n2
            for p2, n2 in object_preds:
                key = (p1, p2)
                oo_pairs[key] = oo_pairs.get(key, 0) + 1
                oo_rows[key] = oo_rows.get(key, 0) + n1 * n2

    predicates: dict[Term, PredicateStats] = {}
    for p_id, histogram in histograms.items():
        predicate = term(p_id)
        predicates[predicate] = PredicateStats(
            count=store.predicate_count(predicate),
            distinct_subjects=store.distinct_subjects(predicate),
            distinct_objects=store.distinct_objects(predicate),
            objects=None
            if histogram is None
            else {term(o): n for o, n in histogram.items()},
        )

    return CharacteristicSets(
        version=store.version,
        triples=len(store),
        distinct_subjects=store.distinct_subjects(),
        distinct_objects=store.distinct_objects(),
        predicates=predicates,
        sets=sets,
        os_pairs=os_pairs,
        oo_pairs=oo_pairs,
        ss_rows=ss_rows,
        os_rows=os_rows,
        oo_rows=oo_rows,
    )


_ABSENT = object()
_EMPTY: Counter = Counter()


# ---------------------------------------------------------- maintenance


class CharsetMaintainer:
    """Keeps one store's summary current under its ``version`` counter.

    The owning endpoint records term-level deltas through
    :meth:`record_add` / :meth:`record_remove` (and :meth:`record_bulk`
    for batch loads).  :meth:`summary` then reconciles:

    - version already matches -> return the cached summary;
    - few recorded deltas covering the whole version gap -> apply them
      incrementally (entity-level working maps make every table update
      exact, verified against fresh rebuilds by the property tests);
    - bulk loads, more deltas than the recompute threshold, or any
      out-of-band store mutation (version advanced without a recorded
      delta) -> full rebuild from the id-space columns.
    """

    def __init__(
        self,
        store: "TripleStore",
        object_histogram_limit: int = DEFAULT_OBJECT_HISTOGRAM_LIMIT,
        rebuild_ratio: float = 0.25,
        min_rebuild: int = 64,
    ):
        self._store = store
        self._histogram_limit = object_histogram_limit
        self._rebuild_ratio = rebuild_ratio
        self._min_rebuild = min_rebuild
        self._summary: CharacteristicSets | None = None
        self._deltas: list[tuple[int, "Triple"]] = []
        self._known_version = -1
        self._force_rebuild = False
        #: Working entity maps for incremental updates (term-keyed):
        #: subject -> Counter of elements, object -> Counter of predicates.
        self._subj: dict[Term, Counter] | None = None
        self._obj: dict[Term, Counter] | None = None
        #: Rebuild/incremental counters, exposed for tests and metrics.
        self.rebuilds = 0
        self.incremental_updates = 0

    # ------------------------------------------------------- delta intake

    def record_add(self, triple: "Triple") -> None:
        self._record(1, triple)

    def record_remove(self, triple: "Triple") -> None:
        self._record(-1, triple)

    def record_bulk(self) -> None:
        """A batch load happened: always recompute on next access."""
        self._force_rebuild = True
        self._deltas.clear()
        self._known_version = self._store.version

    def _record(self, sign: int, triple: "Triple") -> None:
        if self._summary is None:
            # Nothing built yet; the first summary() builds from scratch.
            self._known_version = self._store.version
            return
        if self._subj is None:
            self._force_rebuild = True
        else:
            self._deltas.append((sign, triple))
        self._known_version = self._store.version

    # ----------------------------------------------------------- summary

    def install(self, summary: CharacteristicSets) -> bool:
        """Adopt a persisted summary; True when it matches the store.

        A loaded summary has no working entity maps, so the first
        recorded delta after installation forces a rebuild.
        """
        if summary.triples != len(self._store):
            return False
        summary.version = self._store.version
        self._summary = summary
        self._subj = None
        self._obj = None
        self._deltas.clear()
        self._force_rebuild = False
        self._known_version = self._store.version
        return True

    def summary(self) -> CharacteristicSets:
        store = self._store
        current = store.version
        summary = self._summary
        if summary is not None and summary.version == current and not self._force_rebuild:
            return summary
        threshold = (
            0
            if summary is None
            else max(self._min_rebuild, int(self._rebuild_ratio * summary.triples))
        )
        if (
            summary is None
            or self._force_rebuild
            or self._subj is None
            or self._known_version != current
            or len(self._deltas) > threshold
        ):
            self._rebuild()
        else:
            self._apply_deltas()
        self._deltas.clear()
        self._force_rebuild = False
        self._known_version = current
        assert self._summary is not None
        return self._summary

    def _rebuild(self) -> None:
        store = self._store
        self._summary = build_charsets(store, self._histogram_limit)
        subj: dict[Term, Counter] = {}
        obj: dict[Term, Counter] = {}
        for triple in store:
            counter = subj.get(triple.subject)
            if counter is None:
                counter = subj[triple.subject] = Counter()
            counter[triple.predicate] += 1
            if triple.predicate == RDF_TYPE:
                counter[class_marker(triple.object)] += 1
            counter = obj.get(triple.object)
            if counter is None:
                counter = obj[triple.object] = Counter()
            counter[triple.predicate] += 1
        self._subj = subj
        self._obj = obj
        self.rebuilds += 1

    # ------------------------------------------------------- incremental

    def _apply_deltas(self) -> None:
        summary = self._summary
        assert summary is not None and self._subj is not None and self._obj is not None
        store = self._store
        touched: set[Term] = set()
        for sign, triple in self._deltas:
            self._apply_one(sign, triple, touched)
            self.incremental_updates += 1
        # Scalar per-predicate tallies are re-read from the store (which
        # maintains them exactly); only touched predicates change.
        for predicate in touched:
            count = store.predicate_count(predicate)
            if count == 0:
                summary.predicates.pop(predicate, None)
                continue
            stats = summary.predicates.get(predicate)
            histogram = stats.objects if stats is not None else None
            if stats is None:
                # Predicate newly appeared: build its histogram directly.
                histogram = self._histogram_for(predicate)
            summary.predicates[predicate] = PredicateStats(
                count=count,
                distinct_subjects=store.distinct_subjects(predicate),
                distinct_objects=store.distinct_objects(predicate),
                objects=histogram,
            )
        summary.triples = len(store)
        summary.distinct_subjects = store.distinct_subjects()
        summary.distinct_objects = store.distinct_objects()
        summary.version = store.version

    def _histogram_for(self, predicate: Term) -> dict[Term, int] | None:
        store = self._store
        p_id = store.dictionary.lookup(predicate)
        if p_id is None:
            return {}
        histogram: dict[int, int] = {}
        for __, __, o in store.match_ids(None, p_id, None):
            histogram[o] = histogram.get(o, 0) + 1
            if len(histogram) > self._histogram_limit:
                return None
        decode = store.dictionary.decode
        return {decode(o): n for o, n in histogram.items()}

    def _apply_one(self, sign: int, triple: "Triple", touched: set[Term]) -> None:
        summary = self._summary
        assert summary is not None and self._subj is not None and self._obj is not None
        s, p, o = triple.subject, triple.predicate, triple.object
        touched.add(p)

        # Histogram update (exact while it stays under the width limit).
        stats = summary.predicates.get(p)
        if stats is not None and stats.objects is not None:
            histogram = stats.objects
            value = histogram.get(o, 0) + sign
            if value > 0:
                histogram[o] = value
            else:
                histogram.pop(o, None)
            if len(histogram) > self._histogram_limit:
                stats.objects = None

        # ---- subject side: c_s(s, p) changes by sign -------------------
        subject = self._subj.get(s)
        if subject is None:
            subject = self._subj[s] = Counter()
        old_charset = frozenset(subject) if subject else None
        subject_objects = self._obj.get(s, _EMPTY)
        old_count = subject[p]
        for q, n in subject.items():
            if isinstance(q, tuple) or q == p:
                continue
            _bump(summary.ss_rows, (p, q), sign * n)
            _bump(summary.ss_rows, (q, p), sign * n)
        _bump(summary.ss_rows, (p, p), 2 * old_count + 1 if sign > 0 else -(2 * old_count - 1))
        for q, n in subject_objects.items():
            _bump(summary.os_rows, (q, p), sign * n)
        if (sign > 0 and old_count == 0) or (sign < 0 and old_count == 1):
            for q in subject_objects:
                _bump(summary.os_pairs, (q, p), sign)
        subject[p] += sign
        if subject[p] <= 0:
            del subject[p]
        if p == RDF_TYPE:
            marker = class_marker(o)
            subject[marker] += sign
            if subject[marker] <= 0:
                del subject[marker]
        new_charset = frozenset(subject) if subject else None
        if old_charset != new_charset:
            if old_charset is not None:
                _bump(summary.sets, old_charset, -1)
            if new_charset is not None:
                _bump(summary.sets, new_charset, 1)
        if not subject:
            del self._subj[s]

        # ---- object side: c_o(o, p) changes by sign --------------------
        objects = self._obj.get(o)
        if objects is None:
            objects = self._obj[o] = Counter()
        object_subjects = self._subj.get(o, _EMPTY)
        old_count = objects[p]
        for q, n in objects.items():
            if q == p:
                continue
            _bump(summary.oo_rows, (p, q), sign * n)
            _bump(summary.oo_rows, (q, p), sign * n)
        _bump(summary.oo_rows, (p, p), 2 * old_count + 1 if sign > 0 else -(2 * old_count - 1))
        for q, n in object_subjects.items():
            if isinstance(q, tuple):
                continue
            _bump(summary.os_rows, (p, q), sign * n)
        if (sign > 0 and old_count == 0) or (sign < 0 and old_count == 1):
            for q in object_subjects:
                if isinstance(q, tuple):
                    continue
                _bump(summary.os_pairs, (p, q), sign)
            for q in objects:
                if q == p:
                    continue
                _bump(summary.oo_pairs, (p, q), sign)
                _bump(summary.oo_pairs, (q, p), sign)
            _bump(summary.oo_pairs, (p, p), sign)
        objects[p] += sign
        if objects[p] <= 0:
            del objects[p]
        if not objects:
            del self._obj[o]


def _bump(table: dict, key, delta: int) -> None:
    if not delta:
        return
    value = table.get(key, 0) + delta
    if value:
        table[key] = value
    else:
        table.pop(key, None)


# ---------------------------------------------------------- persistence


def save_charsets(path, summaries: dict[str, CharacteristicSets]) -> None:
    """Persist per-endpoint summaries as one JSON document."""
    import json

    payload = {name: summary.to_dict() for name, summary in sorted(summaries.items())}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"), sort_keys=True)


def load_charsets(path) -> dict[str, CharacteristicSets]:
    import json

    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return {name: CharacteristicSets.from_dict(data) for name, data in payload.items()}


def federation_charsets(endpoints: Iterable) -> dict[str, CharacteristicSets]:
    """Current summaries for every endpoint (building where needed)."""
    return {endpoint.name: endpoint.charset_summary() for endpoint in endpoints}
