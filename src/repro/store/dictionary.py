"""Term dictionary: dense integer ids for RDF terms.

Distributed RDF engines (RDF-3X, the partitioned-graph systems of Peng et
al., Lothbrok's fragment statistics) do not join on IRI strings — they
dictionary-encode every term once at load time and run the whole data
plane in integer space.  :class:`TermDictionary` is that mapping: each
distinct term gets a dense ``int`` id in first-encounter order, with a
decode table for the reverse direction.

Two instances play distinct roles in this codebase:

* every :class:`~repro.store.TripleStore` owns one — its permutation
  indexes, the SPARQL evaluator's solution bindings, and all per-predicate
  statistics are keyed on that store's ids;
* the mediator's relational layer shares one process-wide codec
  (:func:`repro.relational.relation.mediator_codec`) so hash joins,
  DISTINCT, and VALUES extraction over results from *different* endpoints
  still compare plain ints.

Encoding is interning: ``encode`` assigns a fresh id to an unseen term, so
query-only constants (VALUES rows, FILTER constants) can be pulled into id
space too.  ``lookup`` never interns — a miss means "this term cannot
occur in the data", which the evaluator exploits to prune dead patterns
without touching an index.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.rdf.terms import Term

#: An encoded solution row: ids aligned with a variable schema, ``None``
#: marking an unbound position (e.g. from OPTIONAL).
IdRow = tuple


class TermDictionary:
    """A bijective term <-> dense-int mapping (ids start at 0)."""

    __slots__ = ("_ids", "_terms")

    def __init__(self):
        self._ids: dict[Term, int] = {}
        self._terms: list[Term] = []

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: Term) -> bool:
        return term in self._ids

    def __repr__(self) -> str:
        return f"TermDictionary(terms={len(self._terms)})"

    def __iter__(self) -> Iterator[Term]:
        return iter(self._terms)

    # ------------------------------------------------------------- encode

    def encode(self, term: Term) -> int:
        """The id of ``term``, interning it if unseen."""
        ids = self._ids
        found = ids.get(term)
        if found is not None:
            return found
        fresh = len(self._terms)
        ids[term] = fresh
        self._terms.append(term)
        return fresh

    def lookup(self, term: Term) -> int | None:
        """The id of ``term`` if already interned, else ``None``."""
        return self._ids.get(term)

    def encode_row(self, row: Iterable[Term | None]) -> IdRow:
        """Encode one solution row; ``None`` (unbound) passes through."""
        encode = self.encode
        return tuple(None if term is None else encode(term) for term in row)

    # ------------------------------------------------------------- decode

    def decode(self, term_id: int) -> Term:
        """The term for an id minted by this dictionary."""
        return self._terms[term_id]

    def decode_row(self, row: IdRow) -> tuple[Term | None, ...]:
        """Decode one solution row; ``None`` (unbound) passes through."""
        terms = self._terms
        return tuple(None if term_id is None else terms[term_id] for term_id in row)

    @property
    def terms(self) -> list[Term]:
        """The decode table (do not mutate)."""
        return self._terms
