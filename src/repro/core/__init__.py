"""Lusail core: locality-aware decomposition and selectivity-aware execution."""

from repro.core.engine import LusailConfig, LusailEngine, QueryPlanInfo

__all__ = ["LusailConfig", "LusailEngine", "QueryPlanInfo"]

from repro.core.mqo import (
    BatchOutcome,
    MultiQueryExecutor,
    SharedSubqueryCache,
    SubqueryMatcher,
)

__all__ += ["BatchOutcome", "MultiQueryExecutor", "SharedSubqueryCache", "SubqueryMatcher"]
