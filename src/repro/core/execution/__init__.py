"""SAPE: cost model, delayed subqueries, scheduling, and join ordering."""

from repro.core.execution.cost_model import (
    CardinalityEstimates,
    DelayDecision,
    DelayPolicy,
    collect_statistics,
    count_query,
    decide_delays,
)
from repro.core.execution.join_order import JoinPlanNode, execute_plan, plan_joins
from repro.core.execution.outliers import RobustStats, chauvenet_outliers, robust_stats
from repro.core.execution.partial import PartialBranchScheduler, StrategyDecision, choose_strategy
from repro.core.execution.request_handler import ElasticRequestHandler
from repro.core.execution.scheduler import BranchOutcome, BranchScheduler, SchedulerConfig

__all__ = [
    "BranchOutcome",
    "BranchScheduler",
    "PartialBranchScheduler",
    "StrategyDecision",
    "CardinalityEstimates",
    "DelayDecision",
    "DelayPolicy",
    "ElasticRequestHandler",
    "JoinPlanNode",
    "RobustStats",
    "SchedulerConfig",
    "chauvenet_outliers",
    "choose_strategy",
    "collect_statistics",
    "count_query",
    "decide_delays",
    "execute_plan",
    "plan_joins",
    "robust_stats",
]
