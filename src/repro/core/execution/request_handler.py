"""The Elastic Request Handler (paper Sec III / Fig 4).

Lusail assigns one worker thread per relevant endpoint (the "ideal
case"), bounded by the configured pool size.  In this reproduction the
threads are virtual: the handler decides how many partitions each
subquery's result is split across — the quantity the join cost model
divides by — while the virtual network's per-endpoint lanes provide the
thread-per-endpoint timing behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ElasticRequestHandler:
    """Thread-pool bookkeeping for one query execution."""

    pool_size: int
    endpoint_names: tuple[str, ...]

    #: Rows per partition chunk when splitting large relations.
    CHUNK_ROWS = 64

    def threads_for(self, sources: tuple[str, ...]) -> int:
        """Worker threads (= result partitions) for a subquery.

        One thread per relevant endpoint, clamped to the pool size; at
        least one.
        """
        return max(1, min(len(sources), self.pool_size))

    def partitions_for(self, sources: tuple[str, ...], rows: int) -> int:
        """Partitions of a fetched relation on the mediator.

        At least one per collecting endpoint thread; large relations are
        additionally chunked across idle pool workers so hash joins can
        parallelize (the paper's inter-operator parallelism).
        """
        by_size = rows // self.CHUNK_ROWS + 1
        return max(1, min(self.pool_size, max(len(sources), by_size)))

    def total_threads(self) -> int:
        return max(1, min(len(self.endpoint_names), self.pool_size))
