"""SAPE's cardinality estimation and delayed-subquery selection.

Cardinalities come from lightweight per-triple-pattern ``SELECT COUNT``
probes (one per pattern per relevant endpoint, cached).  Filters on a
pattern's variables are pushed into its probe for tighter estimates.

For a subquery ``sq`` and a variable ``v`` it projects::

    C(sq, v, ep) = min over patterns of sq containing v of C(TP, ep)
    C(sq, v)     = sum over relevant endpoints ep of C(sq, v, ep)
    C(sq)        = max over projected variables v of C(sq, v)

A subquery is **delayed** when its estimated cardinality (or its number
of relevant endpoints) exceeds ``mu + sigma`` computed over all
subqueries after Chauvenet outlier rejection (paper Fig 9 selects
``mu + sigma`` as the best threshold; other policies are kept for the
threshold-sensitivity experiment).  OPTIONAL subqueries are always
delayed — the paper names them as a delayed class outright.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from repro.core.decomposition.subquery import Subquery
from repro.core.execution.outliers import robust_stats
from repro.endpoint.client import FederationClient
from repro.rdf.terms import Variable
from repro.rdf.triple import TriplePattern
from repro.sparql.ast import (
    BGP,
    CountAggregate,
    Expression,
    Filter,
    GroupPattern,
    SelectQuery,
)


class DelayPolicy(str, Enum):
    """Threshold policies evaluated in the paper's Fig 9."""

    MU = "mu"
    MU_SIGMA = "mu+sigma"
    MU_2SIGMA = "mu+2sigma"
    OUTLIERS = "outliers"


def count_query(pattern: TriplePattern, filters: tuple[Expression, ...] = ()) -> SelectQuery:
    """The COUNT probe for one triple pattern (with pushable filters)."""
    elements = [BGP([pattern])]
    for expression in pushable_filters(pattern, filters):
        elements.append(Filter(expression))
    return SelectQuery(
        where=GroupPattern(elements),
        select_vars=None,
        aggregate=CountAggregate(Variable("__count")),
    )


def pushable_filters(
    pattern: TriplePattern, filters: tuple[Expression, ...]
) -> list[Expression]:
    """The filters a COUNT probe for this pattern would carry."""
    pattern_vars = pattern.variables()
    return [
        expression
        for expression in filters
        if expression.variables() and expression.variables() <= pattern_vars
    ]


@dataclass
class CardinalityEstimates:
    """Per-pattern, per-endpoint counts plus derived subquery estimates."""

    # Keyed directly on TriplePattern: patterns (and their terms) cache
    # their hash at construction, so repeated probe lookups cost a dict
    # probe, not a recursive re-hash of the pattern's terms.
    pattern_counts: dict[tuple[TriplePattern, str], int] = field(default_factory=dict)

    def pattern_count(self, pattern: TriplePattern, endpoint: str) -> int:
        return self.pattern_counts.get((pattern, endpoint), 0)

    def variable_cardinality(self, subquery: Subquery, variable: Variable) -> float:
        """C(sq, v): summed per-endpoint min over patterns containing v."""
        holding = [p for p in subquery.patterns if variable in p.variables()]
        if not holding:
            return 0.0
        total = 0.0
        for endpoint in subquery.sources:
            total += min(self.pattern_count(pattern, endpoint) for pattern in holding)
        return total

    def subquery_cardinality(self, subquery: Subquery, projected: set[Variable]) -> float:
        """C(sq): max over projected variables of C(sq, v)."""
        variables = subquery.variables() & projected if projected else subquery.variables()
        if not variables:
            variables = subquery.variables()
        if not variables:
            return 0.0
        return max(self.variable_cardinality(subquery, variable) for variable in variables)

    def endpoint_cardinality(
        self, subquery: Subquery, endpoint: str, projected: set[Variable]
    ) -> float:
        """One endpoint's share of C(sq): max over v of C(sq, v, ep).

        The per-endpoint analogue of :meth:`subquery_cardinality`, used
        by the EXPLAIN ANALYZE audit to compare SAPE's per-endpoint
        estimate against the rows that endpoint actually returned.
        """
        variables = subquery.variables() & projected if projected else subquery.variables()
        if not variables:
            variables = subquery.variables()
        best = 0.0
        for variable in variables:
            holding = [p for p in subquery.patterns if variable in p.variables()]
            if not holding:
                continue
            best = max(
                best,
                float(min(self.pattern_count(pattern, endpoint) for pattern in holding)),
            )
        return best


def collect_statistics(
    client: FederationClient,
    subqueries: list[Subquery],
    at_ms: float,
) -> tuple[CardinalityEstimates, float]:
    """Collect per-(pattern, endpoint) cardinalities.

    When the client carries a :class:`StatisticsProvider` (the
    characteristic-set seam), filter-free patterns are answered from the
    endpoint's local summary — no COUNT probe is issued, and with the
    audit on each summary estimate is compared against the exact local
    count under the ``stats`` decision label.  Patterns with pushable
    filters (and clients without a provider) keep the original COUNT
    probe path.  Probes fan out in parallel; cached probes are free.
    Returns the estimates and the virtual completion time.
    """
    estimates = CardinalityEstimates()
    finish = at_ms
    provider = getattr(client, "stats", None)
    from_summary = 0
    mark = client.metrics.mark()
    with client.tracer.span("statistics", t0=at_ms) as span:
        for subquery in subqueries:
            for pattern in subquery.patterns:
                use_summary = provider is not None and not pushable_filters(
                    pattern, subquery.filters
                )
                query: SelectQuery | None = None
                for endpoint in subquery.sources:
                    key = (pattern, endpoint)
                    if key in estimates.pattern_counts:
                        continue
                    if use_summary:
                        estimate, __, end = provider.pattern_count(
                            endpoint, pattern, at_ms
                        )
                        # Ceil keeps sub-row averages (e.g. 0.4 rows per
                        # subject) from rounding a matching pattern to 0.
                        count = int(math.ceil(estimate))
                        from_summary += 1
                        if client.audit.enabled:
                            # The probe path is the accuracy oracle: the
                            # exact local count, read without touching
                            # virtual time or request counters.
                            actual = client.federation.get(endpoint).count_pattern(
                                pattern
                            )
                            client.audit.record(
                                "stats", float(count), float(actual),
                                endpoint=endpoint, span=span,
                            )
                    else:
                        if query is None:
                            query = count_query(pattern, subquery.filters)
                        count, end = client.count(endpoint, query, at_ms)
                    finish = max(finish, end)
                    estimates.pattern_counts[key] = count
        span.set(
            probes=len(estimates.pattern_counts),
            from_summary=from_summary,
            requests=client.metrics.requests_since(mark),
        ).end(finish)
    return estimates, finish


@dataclass
class DelayDecision:
    """The outcome of the delay heuristic, for inspection and tests."""

    cardinalities: dict[int, float]
    endpoint_counts: dict[int, int]
    cardinality_threshold: float
    endpoint_threshold: float
    delayed_ids: set[int]
    #: Subquery ids whose cardinality / endpoint count Chauvenet's
    #: criterion rejected before computing mu and sigma.
    cardinality_rejected_ids: set[int] = field(default_factory=set)
    endpoint_rejected_ids: set[int] = field(default_factory=set)


def decide_delays(
    subqueries: list[Subquery],
    estimates: CardinalityEstimates,
    projected: set[Variable],
    policy: DelayPolicy = DelayPolicy.MU_SIGMA,
    use_chauvenet: bool = True,
) -> DelayDecision:
    """Mark subqueries as delayed according to the threshold policy.

    Mutates ``subquery.delayed`` and ``subquery.estimated_cardinality``;
    guarantees at least one required subquery stays non-delayed so phase
    one always produces bindings.
    """
    cardinalities: dict[int, float] = {}
    endpoint_counts: dict[int, int] = {}
    for subquery in subqueries:
        cardinality = estimates.subquery_cardinality(subquery, projected)
        subquery.estimated_cardinality = cardinality
        cardinalities[subquery.id] = cardinality
        endpoint_counts[subquery.id] = len(subquery.sources)

    values = [cardinalities[sq.id] for sq in subqueries]
    endpoint_values = [float(endpoint_counts[sq.id]) for sq in subqueries]
    card_stats = robust_stats(values, use_chauvenet=use_chauvenet)
    endpoint_stats = robust_stats(endpoint_values, use_chauvenet=use_chauvenet)

    multiplier = {
        DelayPolicy.MU: 0.0,
        DelayPolicy.MU_SIGMA: 1.0,
        DelayPolicy.MU_2SIGMA: 2.0,
        DelayPolicy.OUTLIERS: None,
    }[policy]

    if multiplier is None:
        card_threshold = float("inf")
        endpoint_threshold = float("inf")
        delayed_ids = {
            subqueries[index].id
            for index in card_stats.outliers | endpoint_stats.outliers
        }
    else:
        card_threshold = card_stats.mean + multiplier * card_stats.std
        endpoint_threshold = endpoint_stats.mean + multiplier * endpoint_stats.std
        total_cardinality = sum(cardinalities.values())
        count = len(subqueries)
        delayed_ids = set()
        for subquery in subqueries:
            cardinality = cardinalities[subquery.id]
            endpoints = endpoint_counts[subquery.id]
            # ">= threshold" with a strict "above the mean" guard: for a
            # two-subquery plan the maximum equals mu + sigma exactly, and
            # the paper still delays it (its Q3/Q4 discussions); when all
            # cardinalities are equal nothing is above the mean and
            # nothing is delayed.
            above_cardinality = (
                cardinality > card_stats.mean and cardinality >= card_threshold
            )
            if above_cardinality and count == 2 and multiplier > 0.0:
                # Degenerate two-subquery case: delay only when this one
                # is expected to be *significantly* bigger than its peer
                # (the paper's wording) — a balanced pair gains nothing
                # from serializing.
                peer_mean = (total_cardinality - cardinality) / (count - 1)
                above_cardinality = cardinality >= 2.0 * peer_mean
            above_endpoints = (
                endpoints > endpoint_stats.mean and endpoints >= endpoint_threshold
            )
            if above_cardinality or above_endpoints:
                delayed_ids.add(subquery.id)

    # OPTIONAL subqueries are always delayed: their bindings should come
    # from the required part first (paper Sec V-A, delayed classes).
    for subquery in subqueries:
        if subquery.optional_group is not None:
            delayed_ids.add(subquery.id)

    # Keep at least one required subquery eager.
    required = [sq for sq in subqueries if sq.optional_group is None]
    if required and all(sq.id in delayed_ids for sq in required):
        keeper = min(required, key=lambda sq: cardinalities[sq.id])
        delayed_ids.discard(keeper.id)

    for subquery in subqueries:
        subquery.delayed = subquery.id in delayed_ids

    return DelayDecision(
        cardinalities=cardinalities,
        endpoint_counts=endpoint_counts,
        cardinality_threshold=card_threshold,
        endpoint_threshold=endpoint_threshold,
        delayed_ids=delayed_ids,
        cardinality_rejected_ids={subqueries[i].id for i in card_stats.outliers},
        endpoint_rejected_ids={subqueries[i].id for i in endpoint_stats.outliers},
    )
