"""Partial evaluation: one whole-query round per endpoint.

The alternative to SAPE's bound-join ladder (Peng/Zou, "Processing
SPARQL queries over distributed RDF graphs"): instead of evaluating the
decomposed branch subquery by subquery — with delayed subqueries costing
one serial round of VALUES blocks each — the mediator ships the *entire
branch* to every selected endpoint in a single ``partial`` request.
Each endpoint returns:

* its **local-complete** matches: whole-branch answer rows derivable
  from local data alone (shipped only to endpoints that can source
  every required fragment — elsewhere the set is provably empty), and
* per required subquery, its **partial matches**: the fragment's local
  rows, pre-pruned by join-value digests so rows whose crossing value
  cannot occur on the other side of the edge at any site never ship.

The mediator assembles the partial matches with the columnar join
kernels exactly like SAPE's eager phase, except every fragment relation
carries a per-fragment *origin column* recording which endpoint each
row came from.  After the join, rows whose origins all agree are
dropped — those are precisely the endpoint-local matches already
delivered as local-complete rows — and the remainder (the genuinely
cross-endpoint matches) is unioned with the local-complete rows.
OPTIONAL groups and residue filters then run unchanged on top.

Digest soundness (see :mod:`repro.store.digests`): a fragment row at
endpoint E is dropped only when, for some other required fragment and
some concrete-predicate pattern end holding the crossing variable, the
row's value is absent from *every* relevant site's digest — so no
assembled row can lose it.  With exactly two required fragments the
digest for E additionally excludes E's own values: a surviving
assembled row must mix two origins, so E-only values can never
contribute (with three or more fragments a mixed row may still reuse E
for the other fragment, hence the exclusion applies only at k=2).

:func:`choose_strategy` is the planner's picker between this path and
the LADE+SAPE bound-join path, driven by the characteristic-set
statistics already collected for the cost model; its estimate of the
crossing selectivity is audited against the measured one through the
EXPLAIN ANALYZE machinery (decision ``strategy``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decomposition.subquery import DecompositionPlan, Subquery
from repro.core.execution.cost_model import CardinalityEstimates
from repro.core.execution.scheduler import BranchOutcome, BranchScheduler
from repro.endpoint.cache import MISSING
from repro.exceptions import NetworkError
from repro.rdf.terms import IRI, Variable, is_concrete
from repro.relational.relation import Relation
from repro.sparql.ast import BGP, Filter, GroupPattern, SelectQuery
from repro.sparql.partial import FragmentSpec, PartialSpec
from repro.store.digests import OBJECT, SUBJECT

#: Margin the picker requires before leaving the bound-join incumbent:
#: partial must look at least this much cheaper in estimated virtual
#: time.  Estimates are coarse; a close call stays on the known path.
_PICKER_MARGIN = 0.9


def _origin_variable(subquery_id: int) -> Variable:
    """The per-fragment origin column (never collides with query vars)."""
    return Variable(f"__src{subquery_id}")


def _origin_term(endpoint_name: str) -> IRI:
    return IRI(f"urn:partial-origin:{endpoint_name}")


def _fragment_projection(
    subquery: Subquery, needed_vars: set[Variable]
) -> tuple[Variable, ...]:
    """Same projection rule as the SAPE schedulers use for subqueries."""
    return subquery.projection(needed_vars) or tuple(
        sorted(subquery.variables(), key=lambda v: v.name)
    )


def _crossing_ends(subquery: Subquery, variable: Variable):
    """Concrete-predicate pattern ends of ``subquery`` holding ``variable``.

    Yields ``(predicate, position)`` pairs; each is one digest a value
    must appear in for the variable to bind at this fragment.  Patterns
    with variable predicates yield nothing (no digest constraint).
    """
    for pattern in subquery.patterns:
        if not is_concrete(pattern.predicate):
            continue
        if pattern.subject == variable:
            yield pattern.predicate, SUBJECT
        if pattern.object == variable:
            yield pattern.predicate, OBJECT


class PartialBranchScheduler(BranchScheduler):
    """Executes one branch with the partial-evaluation strategy.

    Only the required phase differs from :class:`BranchScheduler`:
    OPTIONAL groups, residue filters, kernel accounting and the
    partial-results degradation mode are all inherited.
    """

    strategy = "partial"

    #: Measured pruning outcome of the last run, for the strategy audit:
    #: fragment rows that shipped vs. rows the digests dropped.
    fragment_rows_shipped: int = 0
    fragment_rows_pruned: int = 0

    def actual_crossing_selectivity(self) -> float:
        """Fraction of fragment extent rows that survived digest pruning."""
        total = self.fragment_rows_shipped + self.fragment_rows_pruned
        if total <= 0:
            return 1.0
        return self.fragment_rows_shipped / total

    # --------------------------------------------------------------- run

    def _run(self, at_ms: float) -> BranchOutcome:
        required = self.plan.required_subqueries()
        optional_groups = self.plan.optional_groups()
        tracer = self.client.tracer

        now = at_ms
        with tracer.span(
            "partial_round", t0=now, subqueries=[sq.id for sq in required]
        ) as span:
            mark = self.client.metrics.mark()
            relation, now = self._run_required(required, now)
            span.set(
                rows=len(relation),
                requests=self.client.metrics.requests_since(mark),
                pruned_rows=self.fragment_rows_pruned,
            ).end(now)

        for group_id in sorted(optional_groups):
            with tracer.span("optional_group", t0=now, group=group_id) as span:
                relation, now = self._run_optional_group(
                    optional_groups[group_id], relation, now
                )
                span.set(rows=len(relation)).end(now)

        relation = self._apply_residue(relation)
        now += self.mediator.scan_ms(len(relation))
        return BranchOutcome(relation, now, self.join_cost_units)

    def _run_required(
        self, required: list[Subquery], now: float
    ) -> tuple[Relation, float]:
        """The single partial round plus mediator-side assembly."""
        projections = {
            sq.id: _fragment_projection(sq, self.needed_vars) for sq in required
        }
        branch_projection = tuple(
            sorted(
                {var for sq in required for var in projections[sq.id]},
                key=lambda v: v.name,
            )
        )
        complete_query = self._complete_query(required, branch_projection)

        digest_map, now = self._gather_digests(required, now)

        # Fan out: one partial request per endpoint, all at the same
        # virtual instant — the round ends when the slowest reply lands.
        live_sources = {sq.id: self._live(sq.sources) for sq in required}
        endpoints = list(
            dict.fromkeys(
                endpoint for sq in required for endpoint in live_sources[sq.id]
            )
        )
        complete_sources = None
        for sq in required:
            sources = set(live_sources[sq.id])
            complete_sources = (
                sources if complete_sources is None else complete_sources & sources
            )
        complete_sources = complete_sources or set()

        finish = now
        results: dict[str, object] = {}
        for endpoint in endpoints:
            spec = self._spec_for(
                endpoint,
                required,
                projections,
                live_sources,
                complete_sources,
                complete_query,
                digest_map,
            )
            if spec.complete is None and not spec.fragments:
                continue
            try:
                result, end = self.client.partial(endpoint, spec, now)
            except NetworkError as exc:
                if not self.config.partial_results:
                    raise
                finish = max(finish, self._drop_endpoint(endpoint, exc, now))
                continue
            finish = max(finish, end)
            results[endpoint] = result
        now = finish

        relation = self._assemble(required, projections, branch_projection, results, now)
        return relation, now

    # ----------------------------------------------------------- requests

    def _complete_query(
        self, required: list[Subquery], projection: tuple[Variable, ...]
    ) -> SelectQuery:
        """The whole-branch SELECT whose local answers are the LC matches.

        Built exactly like the fragment SELECTs (same non-distinct bag
        semantics), so an endpoint's local-complete rows carry the same
        multiplicities as the join of its own fragment rows — the
        invariant the same-origin deduplication relies on.
        """
        patterns = tuple(p for sq in required for p in sq.patterns)
        elements = [BGP(patterns)]
        for sq in required:
            for expression in sq.filters:
                elements.append(Filter(expression))
        return SelectQuery(
            where=GroupPattern(elements),
            select_vars=projection if projection else None,
        )

    def _gather_digests(
        self, required: list[Subquery], now: float
    ) -> tuple[dict, float]:
        """Fetch every digest the fragment specs will embed, in parallel.

        Keys are ``(source, predicate, position)``; fetches ride the
        cached ``stats`` metadata path, so after the first query over a
        federation state this costs one cache hit per key.
        """
        digest_map: dict = {}
        if len(required) < 2:
            return digest_map, now
        wanted: set = set()
        for subquery in required:
            other_vars = {
                var
                for other in required
                if other.id != subquery.id
                for var in other.variables()
            }
            for variable in subquery.variables() & other_vars:
                for predicate, position in _crossing_ends(subquery, variable):
                    for source in self._live(subquery.sources):
                        wanted.add((source, predicate, position))
        finish = now
        for source, predicate, position in sorted(
            wanted, key=lambda item: (item[0], repr(item[1]), item[2])
        ):
            try:
                digest, end = self.client.join_digest(source, predicate, position, now)
            except NetworkError as exc:
                if not self.config.partial_results:
                    raise
                finish = max(finish, self._drop_endpoint(source, exc, now))
                continue
            digest_map[(source, predicate, position)] = digest
            finish = max(finish, end)
        return digest_map, finish

    def _digests_for(
        self,
        subquery: Subquery,
        projections: dict[int, tuple[Variable, ...]],
        required: list[Subquery],
        live_sources: dict[int, tuple[str, ...]],
        digest_map: dict,
        endpoint: str,
    ) -> tuple:
        """Pruning digests for one fragment at one endpoint.

        For each crossing variable, the allowed set is the intersection
        over the *other* fragments sharing it (and over each such
        fragment's constraining pattern ends) of the union of the
        relevant sites' digests.  With exactly two required fragments
        the evaluating endpoint's own digests are excluded from the
        union — see the module docstring for why that is sound only
        at k=2.
        """
        exclude_self = len(required) == 2
        pairs = []
        for variable in projections[subquery.id]:
            allowed: set | None = None
            for other in required:
                if other.id == subquery.id or variable not in other.variables():
                    continue
                constraint: set | None = None
                for predicate, position in _crossing_ends(other, variable):
                    union: set = set()
                    usable = True
                    for source in live_sources[other.id]:
                        if exclude_self and source == endpoint:
                            continue
                        digest = digest_map.get((source, predicate, position))
                        if digest is None:
                            usable = False
                            break
                        union |= digest
                    if not usable:
                        continue
                    constraint = union if constraint is None else constraint & union
                if constraint is not None:
                    allowed = constraint if allowed is None else allowed & constraint
            if allowed is not None:
                pairs.append((variable, frozenset(allowed)))
        return tuple(pairs)

    def _spec_for(
        self,
        endpoint: str,
        required: list[Subquery],
        projections: dict[int, tuple[Variable, ...]],
        live_sources: dict[int, tuple[str, ...]],
        complete_sources: set[str],
        complete_query: SelectQuery,
        digest_map: dict,
    ) -> PartialSpec:
        fragments = []
        if len(required) > 1:
            for subquery in required:
                if endpoint not in live_sources[subquery.id]:
                    continue
                fragments.append(
                    FragmentSpec(
                        subquery.id,
                        subquery.to_select(projections[subquery.id]),
                        self._digests_for(
                            subquery, projections, required,
                            live_sources, digest_map, endpoint,
                        ),
                    )
                )
        complete = complete_query if endpoint in complete_sources else None
        return PartialSpec(complete, tuple(fragments))

    # ----------------------------------------------------------- assembly

    def _assemble(
        self,
        required: list[Subquery],
        projections: dict[int, tuple[Variable, ...]],
        branch_projection: tuple[Variable, ...],
        results: dict,
        now: float,
    ) -> Relation:
        local_complete = Relation(branch_projection, partitions=1)
        for endpoint, result in results.items():
            if result.complete is not None:
                local_complete.rows.extend(result.complete.rows)
        self._guard_rows(len(local_complete))
        if len(required) < 2:
            return local_complete

        shipped = 0
        pruned = 0
        fragment_relations: list[tuple[Subquery, Relation]] = []
        for subquery in required:
            projection = projections[subquery.id]
            origin_var = _origin_variable(subquery.id)
            relation = Relation((*projection, origin_var), partitions=1)
            for endpoint, result in results.items():
                origin = _origin_term(endpoint)
                for fragment in result.fragments:
                    if fragment.id != subquery.id:
                        continue
                    rows = fragment.result.rows
                    relation.rows.extend((*row, origin) for row in rows)
                    shipped += len(rows)
                    pruned += fragment.pruned_rows
            self._guard_rows(len(relation))
            fragment_relations.append((subquery, relation))
        self.fragment_rows_shipped = shipped
        self.fragment_rows_pruned = pruned

        components = self._join_eager(fragment_relations, now)
        assembled = self._combine_components(components, now)
        assembled = self._drop_same_origin(
            assembled, [_origin_variable(sq.id) for sq in required]
        )
        assembled = assembled.project(branch_projection)
        relation = assembled.union(local_complete)
        self._guard_rows(len(relation))
        return relation

    def _drop_same_origin(
        self, relation: Relation, origin_vars: list[Variable]
    ) -> Relation:
        """Drop rows whose origin columns all name the same endpoint.

        Those rows are endpoint-local joins — exactly the set delivered
        (with identical multiplicities) as that endpoint's local-complete
        matches — so keeping them would double-count.
        """
        if len(relation) == 0:
            return relation
        indexes = [relation.vars.index(var) for var in origin_vars]
        columns = relation.columns
        first = columns[indexes[0]]
        rest = [columns[i] for i in indexes[1:]]
        keep = [
            i
            for i in range(len(relation))
            if any(column[i] != first[i] for column in rest)
        ]
        if len(keep) == len(relation):
            return relation
        kept_columns = [[column[i] for i in keep] for column in columns]
        return Relation._from_columns(
            relation.vars,
            kept_columns,
            len(keep),
            partitions=relation.partitions,
            sort_order=relation.sort_order,
        )


# --------------------------------------------------------------------------
# Strategy picker


@dataclass
class StrategyDecision:
    """The picker's verdict plus the estimates behind it (for the audit)."""

    strategy: str
    estimated_crossing_selectivity: float
    est_partial_rows: float = 0.0
    est_bound_rows: float = 0.0
    est_partial_ms: float = 0.0
    est_bound_ms: float = 0.0
    reason: str = ""


def _fragment_selectivities(
    required: list[Subquery], provider
) -> dict[int, float]:
    """Charset-based per-fragment digest-pruning survival estimates.

    For each fragment and crossing variable: the other fragments can
    bind at most their own distinct-value count for that variable, so a
    fragment with many more distinct crossing values than its partners
    will mostly be pruned.  Each fragment's survival is the min over
    its crossing variables of ``min(1, other_distinct / own_distinct)``
    (every digest must pass independently); fragments with no usable
    statistics keep 1.0, and the audit tracks how honest this is.
    """
    survival = {sq.id: 1.0 for sq in required}
    if provider is None or len(required) < 2:
        return survival
    for subquery in required:
        other_vars: dict[Variable, float] = {}
        for other in required:
            if other.id == subquery.id:
                continue
            for variable in subquery.variables() & other.variables():
                count = provider.distinct_values(other, variable)
                if count is None:
                    continue
                other_vars[variable] = min(
                    other_vars.get(variable, float("inf")), float(count)
                )
        for variable, other_count in other_vars.items():
            own = provider.distinct_values(subquery, variable)
            if own is None or own <= 0:
                continue
            survival[subquery.id] = min(
                survival[subquery.id], min(1.0, other_count / float(own))
            )
    return survival


def _digests_are_cold(required: list[Subquery], client) -> bool:
    """Whether the partial round must be preceded by a digest fetch round.

    Mirrors the key set :meth:`PartialBranchScheduler._gather_digests`
    will request, and peeks at the engine-level digest cache (no
    counters touched): a digest is warm only while its cached store
    version still matches the endpoint's.
    """
    cache = client.caches.digest
    for subquery in required:
        other_vars = {
            var
            for other in required
            if other.id != subquery.id
            for var in other.variables()
        }
        for variable in subquery.variables() & other_vars:
            for predicate, position in _crossing_ends(subquery, variable):
                for source in subquery.sources:
                    hit = cache.peek((source, predicate, position))
                    if hit is MISSING:
                        return True
                    if hit[0] != client.federation.get(source).store.version:
                        return True
    return False


def choose_strategy(
    plan: DecompositionPlan,
    needed_vars: set[Variable],
    estimates: CardinalityEstimates,
    client,
) -> StrategyDecision:
    """Pick partial vs. bound-join for one branch from planner estimates.

    Pure arithmetic over statistics the analysis phase already holds:
    never issues a request, so the decision is free in virtual time.
    The coarse virtual-cost model mirrors the simulator's shape — a
    per-round latency term plus a per-row transfer term — with partial
    paying one round and its digest-discounted fragment volume, and
    bound-join paying one eager round plus one serial round per delayed
    subquery over its estimated response volume.
    """
    required = plan.required_subqueries()
    if len(required) < 2:
        return StrategyDecision(
            "bound-join", 1.0, reason="single required subquery"
        )

    network_config = client.config
    provider = getattr(client, "stats", None)
    extents = {
        sq.id: sum(
            estimates.endpoint_cardinality(sq, endpoint, needed_vars)
            for endpoint in sq.sources
        )
        for sq in required
    }
    survival = _fragment_selectivities(required, provider)

    est_partial_rows = sum(
        survival[sq.id] * extents[sq.id] for sq in required
    )
    total_extent = sum(extents.values())
    # Volume-weighted survival: directly comparable to the shipped /
    # (shipped + pruned) fraction the partial round measures.
    selectivity = est_partial_rows / total_extent if total_extent else 1.0
    delayed = [sq for sq in required if sq.delayed]
    # Eager subqueries ship unpruned; a delayed subquery's VALUES-bound
    # replies are already join-filtered by the eager bindings, which is
    # first-order the same cut a digest applies — so the same survival
    # fraction discounts them.
    est_bound_rows = sum(
        extents[sq.id] for sq in required if not sq.delayed
    ) + sum(
        survival[sq.id] * sq.estimated_cardinality for sq in delayed
    )

    regions = [
        client.federation.get(endpoint).region
        for sq in required
        for endpoint in sq.sources
    ]
    mean_rtt = (
        sum(network_config.rtt(region) for region in regions) / len(regions)
        if regions
        else 0.0
    )
    latency_ms = network_config.request_overhead_ms + mean_rtt
    row_ms = network_config.row_transfer_ms + network_config.eval_row_ms
    # A cold digest cache costs partial one extra metadata round before
    # anything ships, but the digests are engine-level and version
    # checked — like the charset summaries, a one-time investment per
    # federation state.  The comparison therefore uses the steady-state
    # (warm) cost: when partial wins there, it is worth bootstrapping
    # the digests on this run even though this run pays two rounds.
    cold = _digests_are_cold(required, client)
    est_partial_ms = (2 if cold else 1) * latency_ms + est_partial_rows * row_ms
    warm_partial_ms = latency_ms + est_partial_rows * row_ms
    est_bound_ms = (1 + len(delayed)) * latency_ms + est_bound_rows * row_ms

    if warm_partial_ms < est_bound_ms * _PICKER_MARGIN:
        return StrategyDecision(
            "partial",
            selectivity,
            est_partial_rows,
            est_bound_rows,
            est_partial_ms,
            est_bound_ms,
            reason=(
                "partial round estimated cheaper (bootstrapping digests)"
                if cold
                else "partial round estimated cheaper"
            ),
        )
    return StrategyDecision(
        "bound-join",
        selectivity,
        est_partial_rows,
        est_bound_rows,
        est_partial_ms,
        est_bound_ms,
        reason="bound-join ladder estimated cheaper",
    )
