"""Chauvenet's criterion for outlier rejection (paper Sec V-A).

SAPE computes the mean and standard deviation of subquery cardinalities
to decide which subqueries to delay.  Extreme cardinalities would inflate
the standard deviation and hide genuinely large subqueries, so the paper
rejects outliers with Chauvenet's criterion first: a sample ``x`` is an
outlier when the expected number of samples as far from the mean as
``x`` is below one half, i.e. ``N * erfc(|x - mu| / (sigma * sqrt(2))) < 0.5``.

Rejection is applied iteratively until no sample qualifies, which is the
standard practice for the criterion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def _mean_std(values: Sequence[float]) -> tuple[float, float]:
    n = len(values)
    mean = sum(values) / n
    variance = sum((value - mean) ** 2 for value in values) / n
    return mean, math.sqrt(variance)


def chauvenet_outliers(values: Sequence[float]) -> set[int]:
    """Indexes of samples rejected by (iterated) Chauvenet's criterion."""
    if len(values) < 3:
        return set()
    active = list(range(len(values)))
    rejected: set[int] = set()
    while len(active) >= 3:
        sample = [values[index] for index in active]
        mean, std = _mean_std(sample)
        if std == 0.0:
            break
        worst_index = None
        worst_prob = None
        for index in active:
            deviation = abs(values[index] - mean) / std
            probability = math.erfc(deviation / math.sqrt(2.0))
            if worst_prob is None or probability < worst_prob:
                worst_prob = probability
                worst_index = index
        assert worst_index is not None and worst_prob is not None
        if len(active) * worst_prob < 0.5:
            rejected.add(worst_index)
            active.remove(worst_index)
        else:
            break
    return rejected


@dataclass(frozen=True)
class RobustStats:
    """Mean/std computed after Chauvenet rejection, plus the outlier set."""

    mean: float
    std: float
    outliers: frozenset[int]


def robust_stats(values: Sequence[float], use_chauvenet: bool = True) -> RobustStats:
    """Mean and standard deviation with optional outlier rejection."""
    if not values:
        return RobustStats(0.0, 0.0, frozenset())
    outliers = chauvenet_outliers(values) if use_chauvenet else set()
    kept = [value for index, value in enumerate(values) if index not in outliers]
    if not kept:
        kept = list(values)
        outliers = set()
    mean, std = _mean_std(kept)
    return RobustStats(mean=mean, std=std, outliers=frozenset(outliers))
