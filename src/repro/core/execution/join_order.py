"""Cost-based join ordering for subquery results (paper Sec V-B).

Once the subquery relations are on the mediator, their join order is
chosen with a dynamic-programming enumerator over connected subsets (in
the spirit of Moerkotte & Neumann's DP algorithms, which the paper
cites).  The cost of joining a subplan ``S`` with a relation ``R``
follows the paper's parallel hash-join model::

    JoinCost(S, R) = |S| / S.threads  (hashing the smaller side)
                   + C(R) / R.threads (probing with the larger side)

Cross products are avoided unless the join graph is disconnected.  The
fallback (``greedy=True``, used for ablation) picks the smallest pair
first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Sequence

from repro.rdf.terms import Variable
from repro.relational import kernels
from repro.relational.relation import Relation


@dataclass
class JoinHints:
    """Statistics-derived hints for the join-row estimator.

    Built by the scheduler from the characteristic-set statistics
    provider (already-fetched summaries only, so consulting the hints is
    free in virtual time):

    * ``var_counts[(i, v)]`` — an upper bound on relation ``i``'s
      distinct values of ``v`` (summed per-endpoint distinct subject /
      object tallies of the tightest pattern holding ``v``);
    * ``pair_rows[{i, j}]`` — the exact same-endpoint join fan-out for a
      leaf pair, from the summaries' predicate-pair tables.
    """

    var_counts: dict[tuple[int, Variable], float] = field(default_factory=dict)
    pair_rows: dict[frozenset, float] = field(default_factory=dict)

    def _distinct(self, node: "JoinPlanNode", variable: Variable) -> float | None:
        """Distinct-value bound for a subtree: min over its leaves."""
        best: float | None = None
        for index in node.relations:
            count = self.var_counts.get((index, variable))
            if count is not None:
                best = count if best is None else min(best, count)
        return best

    def join_rows(
        self, left: "JoinPlanNode", right: "JoinPlanNode", shared: set[Variable]
    ) -> float | None:
        best: float | None = None
        for variable in shared:
            left_distinct = self._distinct(left, variable)
            right_distinct = self._distinct(right, variable)
            if not left_distinct or not right_distinct:
                continue
            # Independence estimate over the join variable's domain.
            estimate = left.rows * right.rows / max(left_distinct, right_distinct)
            best = estimate if best is None else min(best, estimate)
        if left.is_leaf() and right.is_leaf():
            # The same-endpoint pair fan-out is a certain lower bound
            # (cross-endpoint join rows come on top of it): floor the
            # independence estimate with it rather than replacing it.
            exact = self.pair_rows.get(frozenset((left.base_index, right.base_index)))
            if exact is not None and exact > 0.0:
                best = exact if best is None else max(best, exact)
        return best


@dataclass
class JoinPlanNode:
    """A node of the join tree: either a base relation or a join."""

    relations: frozenset[int]
    rows: float
    threads: int
    cost: float
    left: "JoinPlanNode | None" = None
    right: "JoinPlanNode | None" = None
    base_index: int | None = None

    def is_leaf(self) -> bool:
        return self.base_index is not None

    def order(self) -> list[int]:
        """Base relation indexes in execution order (left-deep first)."""
        if self.is_leaf():
            return [self.base_index]  # type: ignore[list-item]
        assert self.left is not None and self.right is not None
        return self.left.order() + self.right.order()


def _connected(vars_a: set[Variable], vars_b: set[Variable]) -> bool:
    return bool(vars_a & vars_b)


def _join_cost(left: JoinPlanNode, right: JoinPlanNode) -> float:
    build, probe = (left, right) if left.rows <= right.rows else (right, left)
    return build.rows / max(1, build.threads) + probe.rows / max(1, probe.threads)


def _estimate_join_rows(
    left: JoinPlanNode,
    right: JoinPlanNode,
    shared: set[Variable],
    hints: JoinHints | None = None,
) -> float:
    if not shared:
        return left.rows * right.rows
    if hints is not None:
        estimate = hints.join_rows(left, right, shared)
        if estimate is not None:
            return min(estimate, left.rows * right.rows)
    # The paper's min-rule: a join on v yields at most the smaller side's
    # bindings of v.
    return min(left.rows, right.rows)


def plan_joins(
    relations: Sequence[Relation],
    greedy: bool = False,
    hints: JoinHints | None = None,
) -> JoinPlanNode:
    """Choose a join order over the given relations.

    ``hints`` (optional) refines the intermediate-row estimates with
    characteristic-set statistics; without it the estimator falls back
    to the paper's min-rule.  Returns the root plan node;
    ``root.order()`` gives the sequence in which :func:`execute_plan`
    combines the inputs.
    """
    if not relations:
        raise ValueError("plan_joins needs at least one relation")

    leaves = [
        JoinPlanNode(
            relations=frozenset((index,)),
            rows=float(len(relation)),
            threads=relation.partitions,
            cost=0.0,
            base_index=index,
        )
        for index, relation in enumerate(relations)
    ]
    if len(leaves) == 1:
        return leaves[0]

    var_sets = [set(relation.vars) for relation in relations]
    if greedy:
        return _greedy_plan(leaves, var_sets, hints)
    return _dp_plan(leaves, var_sets, hints)


def _subset_vars(subset: frozenset[int], var_sets: list[set[Variable]]) -> set[Variable]:
    merged: set[Variable] = set()
    for index in subset:
        merged |= var_sets[index]
    return merged


def _dp_plan(
    leaves: list[JoinPlanNode],
    var_sets: list[set[Variable]],
    hints: JoinHints | None = None,
) -> JoinPlanNode:
    """DP over subsets (DPsub), preferring connected splits."""
    n = len(leaves)
    best: dict[frozenset[int], JoinPlanNode] = {leaf.relations: leaf for leaf in leaves}

    indexes = list(range(n))
    for size in range(2, n + 1):
        for subset_tuple in combinations(indexes, size):
            subset = frozenset(subset_tuple)
            best_node: JoinPlanNode | None = None
            subset_list = sorted(subset)
            # Enumerate proper, non-empty splits once per unordered pair:
            # the last element is pinned to the right side.
            for mask in range(1, 2 ** (len(subset_list) - 1)):
                left_set = frozenset(
                    subset_list[i] for i in range(len(subset_list) - 1) if mask >> i & 1
                )
                if not left_set:
                    continue
                right_set = subset - left_set
                left_node = best.get(left_set)
                right_node = best.get(right_set)
                if left_node is None or right_node is None:
                    continue
                shared = _subset_vars(left_set, var_sets) & _subset_vars(
                    right_set, var_sets
                )
                if not shared and size < n:
                    # Defer cross products until forced at the top.
                    continue
                cost = left_node.cost + right_node.cost + _join_cost(left_node, right_node)
                rows = _estimate_join_rows(left_node, right_node, shared, hints)
                if best_node is None or cost < best_node.cost:
                    best_node = JoinPlanNode(
                        relations=subset,
                        rows=rows,
                        threads=max(left_node.threads, right_node.threads),
                        cost=cost,
                        left=left_node,
                        right=right_node,
                    )
            if best_node is not None:
                best[subset] = best_node

    full = frozenset(indexes)
    root = best.get(full)
    if root is None:
        # Disconnected join graph with no full plan (cross products were
        # skipped): fall back to greedy, which always completes.
        return _greedy_plan(leaves, var_sets, hints)
    return root


def _greedy_plan(
    leaves: list[JoinPlanNode],
    var_sets: list[set[Variable]],
    hints: JoinHints | None = None,
) -> JoinPlanNode:
    """Smallest-cardinality-first pairing, preferring connected pairs."""
    nodes = list(leaves)
    while len(nodes) > 1:
        best_pair: tuple[int, int] | None = None
        best_key: tuple | None = None
        for i in range(len(nodes)):
            for j in range(i + 1, len(nodes)):
                shared = _connected(
                    _subset_vars(nodes[i].relations, var_sets),
                    _subset_vars(nodes[j].relations, var_sets),
                )
                key = (0 if shared else 1, _join_cost(nodes[i], nodes[j]))
                if best_key is None or key < best_key:
                    best_key = key
                    best_pair = (i, j)
        assert best_pair is not None
        i, j = best_pair
        left_node, right_node = nodes[i], nodes[j]
        shared_vars = _subset_vars(left_node.relations, var_sets) & _subset_vars(
            right_node.relations, var_sets
        )
        joined = JoinPlanNode(
            relations=left_node.relations | right_node.relations,
            rows=_estimate_join_rows(left_node, right_node, shared_vars, hints),
            threads=max(left_node.threads, right_node.threads),
            cost=left_node.cost + right_node.cost + _join_cost(left_node, right_node),
            left=left_node,
            right=right_node,
        )
        nodes = [node for k, node in enumerate(nodes) if k not in (i, j)]
        nodes.append(joined)
    return nodes[0]


def plan_summary(root: JoinPlanNode) -> dict:
    """Compact optimizer-side view of a join plan for EXPLAIN ANALYZE.

    The estimated rows/cost here are what the enumerator *believed*;
    the audit compares them against the measured outcome of
    :func:`execute_plan`.
    """
    return {
        "order": root.order(),
        "estimated_rows": root.rows,
        "estimated_cost": root.cost,
    }


def execute_plan(
    root: JoinPlanNode, relations: Sequence[Relation]
) -> tuple[Relation, float]:
    """Execute a join plan; returns the result and the measured cost.

    The returned cost is the paper's JoinCost accumulated over the tree
    from the kernels' *measured* build/probe row counts, which the
    engine converts to virtual milliseconds.
    """
    if root.is_leaf():
        return relations[root.base_index], 0.0  # type: ignore[index]
    assert root.left is not None and root.right is not None
    left_rel, left_cost = execute_plan(root.left, relations)
    right_rel, right_cost = execute_plan(root.right, relations)
    joined = left_rel.join(right_rel)
    return joined, left_cost + right_cost + kernels.last_join_cost()
