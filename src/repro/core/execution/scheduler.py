"""SAPE subquery evaluation (paper Algorithm 3).

Execution of one decomposed conjunctive branch:

1. **Disjoint fast path** — a single required subquery and no OPTIONAL
   blocks: the whole branch is evaluated independently at every relevant
   endpoint and the results concatenated (Alg 3 lines 2-4).
2. **Phase one** — non-delayed subqueries go to all their endpoints
   concurrently; results of connected subqueries are joined eagerly
   (with the DP join-order optimizer) to obtain the found bindings.
3. **Phase two** — delayed subqueries run serially, most selective
   first, as block-wise bound joins: found bindings of the shared
   variables are shipped in ``VALUES`` blocks, one request per block per
   endpoint.  Generic patterns get their source list refined with the
   bindings first (Alg 3 line 13).
4. OPTIONAL groups are evaluated last (always delayed) and left-joined;
   residue filters apply at the mediator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.decomposition.subquery import DecompositionPlan, Subquery, values_block
from repro.core.execution.cost_model import CardinalityEstimates
from repro.core.execution.join_order import (
    JoinHints,
    execute_plan,
    plan_joins,
    plan_summary,
)
from repro.core.execution.request_handler import ElasticRequestHandler
from repro.endpoint.client import FederationClient
from repro.exceptions import MemoryLimitError, NetworkError
from repro.net import metrics as metrics_module
from repro.net.simulator import MediatorCostModel
from repro.planning.source_selection import refine_sources_with_bindings
from repro.rdf.terms import Term, Variable
from repro.rdf.triple import TriplePattern
from repro.relational import kernels
from repro.relational.filters import make_filter_predicate
from repro.relational.kernels import KernelCounters, kernel_runtime
from repro.relational.relation import Relation


def adaptive_block_size(
    block_size: int, min_block: int, estimated_rows: float, bindings: int
) -> int:
    """Bound-join block size scaled by estimated rows per binding.

    Selective delayed subqueries (at most one row back per shipped
    binding) keep the full block; unselective ones shrink the block so
    one VALUES request does not ship ``block_size * rows_per_binding``
    rows back at once, clamped to ``[min_block, block_size]``.
    """
    if bindings <= 0:
        return block_size
    rows_per_binding = estimated_rows / bindings
    if rows_per_binding <= 1.0:
        return block_size
    floor = max(1, min(min_block, block_size))
    return max(floor, min(block_size, int(block_size / rows_per_binding)))


@dataclass
class SchedulerConfig:
    """Tunable execution knobs (defaults follow the paper)."""

    block_size: int = 500
    #: Smallest block the adaptive bound join may shrink to.
    min_block: int = 50
    #: Scale each delayed subquery's block size by its COUNT-estimated
    #: rows-per-binding (see :func:`adaptive_block_size`).
    adaptive_block_size: bool = True
    refine_sources: bool = True
    greedy_join_order: bool = False
    max_mediator_rows: int | None = 2_000_000
    pool_size: int = 8
    #: Degradation mode: instead of failing the whole query when an
    #: endpoint is irrecoverable (retries exhausted, breaker open), drop
    #: that endpoint's contribution and record it as completeness
    #: metadata on the query metrics.  Off by default: a failed
    #: subquery fails the query fast.
    partial_results: bool = False


@dataclass
class BranchOutcome:
    relation: Relation
    end_ms: float
    join_cost_units: float = 0.0


@dataclass
class _Component:
    """A connected group of already-evaluated relations, joined eagerly."""

    relation: Relation
    variables: set[Variable] = field(default_factory=set)


class BranchScheduler:
    """Executes one decomposed branch against the federation."""

    def __init__(
        self,
        client: FederationClient,
        plan: DecompositionPlan,
        needed_vars: set[Variable],
        estimates: CardinalityEstimates,
        mediator: MediatorCostModel,
        config: SchedulerConfig,
    ):
        self.client = client
        self.plan = plan
        self.needed_vars = needed_vars
        self.estimates = estimates
        self.mediator = mediator
        self.config = config
        self.handler = ElasticRequestHandler(
            pool_size=config.pool_size,
            endpoint_names=tuple(client.federation.names()),
        )
        self.join_cost_units = 0.0
        #: Columnar-kernel work counters for this branch, flushed to the
        #: metrics registry when :meth:`run` finishes.
        self.kernel_counters = KernelCounters()
        #: Endpoints dropped in partial-results mode; their contribution
        #: is skipped for the rest of the branch.
        self._dead_endpoints: set[str] = set()

    # ----------------------------------------------------------- plumbing

    def _live(self, sources: tuple[str, ...]) -> tuple[str, ...]:
        if not self._dead_endpoints:
            return sources
        return tuple(name for name in sources if name not in self._dead_endpoints)

    def _drop_endpoint(self, endpoint: str, exc: NetworkError, at_ms: float) -> float:
        """Record a partial-results drop; returns the failure's timestamp."""
        self._dead_endpoints.add(endpoint)
        self.client.metrics.dropped_endpoints.append(endpoint)
        self.client.registry.inc(
            "partial_drops_total", engine=self.client.engine, endpoint=endpoint
        )
        return exc.at_ms if exc.at_ms is not None else at_ms

    def _guard_rows(self, rows: int) -> None:
        limit = self.config.max_mediator_rows
        if limit is not None and rows > limit:
            self.client.metrics.status = "oom"
            raise MemoryLimitError(
                f"mediator intermediate results exceeded {limit} rows", rows=rows
            )

    def _execute_subquery(
        self, subquery: Subquery, at_ms: float, kind: str = metrics_module.SELECT
    ) -> tuple[Relation, float]:
        """Evaluate a subquery at all its endpoints concurrently."""
        projection = subquery.projection(self.needed_vars) or tuple(
            sorted(subquery.variables(), key=lambda v: v.name)
        )
        query = subquery.to_select(projection)
        relation = Relation(projection, partitions=1)
        finish = at_ms
        mark = self.client.metrics.mark()
        audit = self.client.audit
        with self.client.tracer.span(
            "subquery",
            t0=at_ms,
            subquery=subquery.id,
            delayed=subquery.delayed,
            estimated_cardinality=subquery.estimated_cardinality,
            endpoints=list(subquery.sources),
        ) as span:
            for endpoint in self._live(subquery.sources):
                try:
                    result, end = self.client.select(endpoint, query, at_ms, kind=kind)
                except NetworkError as exc:
                    if not self.config.partial_results:
                        raise
                    finish = max(finish, self._drop_endpoint(endpoint, exc, at_ms))
                    continue
                finish = max(finish, end)
                relation.rows.extend(result.rows)
                if audit.enabled:
                    # SAPE's per-endpoint COUNT-derived estimate against
                    # the rows this endpoint actually returned.
                    audit.record(
                        "sape_cardinality",
                        self.estimates.endpoint_cardinality(
                            subquery, endpoint, self.needed_vars
                        ),
                        len(result.rows),
                        endpoint=endpoint,
                        subquery=subquery.id,
                    )
            if audit.enabled:
                # The aggregate C(sq) that drove the delay decision.
                audit.record(
                    "delay",
                    subquery.estimated_cardinality,
                    len(relation),
                    span=span,
                    subquery=subquery.id,
                    delayed=subquery.delayed,
                )
            span.set(
                rows=len(relation),
                requests=self.client.metrics.requests_since(mark),
            ).end(finish)
        relation.partitions = self.handler.partitions_for(subquery.sources, len(relation))
        self._guard_rows(len(relation))
        return relation, finish

    def _execute_bound_subquery(
        self,
        subquery: Subquery,
        bind_vars: tuple[Variable, ...],
        binding_rows: list[tuple[Term | None, ...]],
        sources: tuple[str, ...],
        at_ms: float,
    ) -> tuple[Relation, float]:
        """Evaluate a delayed subquery with VALUES blocks of bindings."""
        projection = subquery.projection(self.needed_vars) or tuple(
            sorted(subquery.variables(), key=lambda v: v.name)
        )
        relation = Relation(projection, partitions=1)
        finish = at_ms
        block_size = self.config.block_size
        if self.config.adaptive_block_size:
            block_size = adaptive_block_size(
                self.config.block_size,
                self.config.min_block,
                subquery.estimated_cardinality,
                len(binding_rows),
            )
        tracer = self.client.tracer
        metrics = self.client.metrics
        # Every block of this subquery shares one query skeleton, so all
        # blocks after the first should hit the endpoint plan caches;
        # the hit delta on the span confirms compiled-plan reuse.
        plan_hits_before = self.client.registry.counter_value(
            "plan_cache_hits_total", engine=self.client.engine
        )
        with tracer.span(
            "bound_subquery",
            t0=at_ms,
            subquery=subquery.id,
            bindings=len(binding_rows),
            block_size=block_size,
            estimated_cardinality=subquery.estimated_cardinality,
            endpoints=list(sources),
        ) as subquery_span:
            for start in range(0, len(binding_rows), block_size):
                block = binding_rows[start:start + block_size]
                query = subquery.to_select(projection, values=values_block(bind_vars, block))
                mark = metrics.mark()
                rows_before = len(relation)
                with tracer.span(
                    "bound_block", t0=at_ms, block=start // block_size, bindings=len(block)
                ) as block_span:
                    block_end = at_ms
                    for endpoint in self._live(sources):
                        try:
                            result, end = self.client.select(
                                endpoint, query, at_ms, kind=metrics_module.BOUND
                            )
                        except NetworkError as exc:
                            if not self.config.partial_results:
                                raise
                            dropped_at = self._drop_endpoint(endpoint, exc, at_ms)
                            block_end = max(block_end, dropped_at)
                            finish = max(finish, dropped_at)
                            continue
                        block_end = max(block_end, end)
                        finish = max(finish, end)
                        relation.rows.extend(result.rows)
                    block_span.set(
                        rows=len(relation) - rows_before,
                        requests=metrics.requests_since(mark),
                    ).end(block_end)
                self.client.registry.inc(
                    "bound_join_blocks_total", engine=self.client.engine
                )
            audit = self.client.audit
            if audit.enabled:
                # Total rows the COUNT estimate predicted vs. received...
                audit.record(
                    "bound_join",
                    subquery.estimated_cardinality,
                    len(relation),
                    span=subquery_span,
                    subquery=subquery.id,
                    bindings=len(binding_rows),
                )
                # ...and the per-binding selectivity that sized the blocks.
                if binding_rows:
                    audit.record(
                        "block_size",
                        subquery.estimated_cardinality / len(binding_rows),
                        len(relation) / len(binding_rows),
                        span=subquery_span,
                        subquery=subquery.id,
                        block_size=block_size,
                    )
            subquery_span.set(
                rows=len(relation),
                requests=sum(
                    int(child.attrs.get("requests", 0)) for child in subquery_span.children
                ),
                plan_cache_hits=int(
                    self.client.registry.counter_value(
                        "plan_cache_hits_total", engine=self.client.engine
                    )
                    - plan_hits_before
                ),
            ).end(finish)
        relation.partitions = self.handler.partitions_for(sources, len(relation))
        self._guard_rows(len(relation))
        return relation, finish

    def _audit_join_plan(self, plan, joined: Relation, cost: float, span) -> None:
        """Record the join enumerator's estimates against measured reality."""
        audit = self.client.audit
        if not audit.enabled:
            return
        summary = plan_summary(plan)
        span.set(join_order=summary["order"])
        audit.record(
            "join_cost",
            summary["estimated_cost"],
            cost,
            span=span,
            order=summary["order"],
        )
        audit.record("join_rows", summary["estimated_rows"], len(joined), span=span)

    # ----------------------------------------------------------- components

    def _merge_into_components(
        self, components: list[_Component], relation: Relation, at_ms: float = 0.0
    ) -> None:
        """Join a new relation into every component it connects with."""
        vars = set(relation.vars)
        connected = [c for c in components if c.variables & vars]
        merged_relation = relation
        merged_vars = set(vars)
        counters = self.kernel_counters
        fast_before = counters.fast_dispatches
        general_before = counters.general_dispatches
        with self.client.tracer.span(
            "mediator_join", t0=at_ms, inputs=len(connected) + 1
        ) as span:
            for component in connected:
                merged_relation = component.relation.join(merged_relation)
                # Charge the paper's JoinCost from the kernel's measured
                # build/probe row counts, not a pre-join estimate.
                self.join_cost_units += kernels.last_join_cost()
                merged_vars |= component.variables
                components.remove(component)
            span.set(
                rows=len(merged_relation),
                kernel_fast=counters.fast_dispatches - fast_before,
                kernel_general=counters.general_dispatches - general_before,
            ).end(at_ms)
        self.client.registry.inc(
            "mediator_join_rows_total", len(merged_relation), engine=self.client.engine
        )
        self._guard_rows(len(merged_relation))
        components.append(_Component(relation=merged_relation, variables=merged_vars))

    def _bindings_for(
        self, components: list[_Component], variables: set[Variable]
    ) -> tuple[tuple[Variable, ...], list[tuple[Term | None, ...]], int] | None:
        """Find the component sharing variables with a delayed subquery.

        Returns (shared variables, distinct binding rows, binding count),
        or None when nothing evaluated so far connects to the subquery.
        """
        best: tuple[tuple[Variable, ...], list[tuple[Term | None, ...]], int] | None = None
        for component in components:
            shared = tuple(
                sorted(component.variables & variables, key=lambda v: v.name)
            )
            if not shared:
                continue
            projected = component.relation.project(shared).distinct()
            rows = [row for row in projected.rows if None not in row]
            if best is None or len(rows) < best[2]:
                best = (shared, rows, len(rows))
        return best

    def _refined_cardinality(
        self, subquery: Subquery, components: list[_Component]
    ) -> float:
        bindings = self._bindings_for(components, subquery.variables())
        if bindings is None:
            return subquery.estimated_cardinality
        return min(subquery.estimated_cardinality, float(bindings[2]))

    # ------------------------------------------------------------- phases

    def run(self, at_ms: float) -> BranchOutcome:
        """Execute the branch with the columnar kernel runtime installed.

        The runtime streams ``max_mediator_rows`` through the kernels (a
        too-large join aborts mid-probe) and collects kernel counters,
        which are flushed to the metrics registry when the branch ends —
        whether it succeeded, overflowed or failed.
        """
        flushed = dict(self.kernel_counters.items())
        try:
            with kernel_runtime(
                max_rows=self.config.max_mediator_rows,
                counters=self.kernel_counters,
                metrics=self.client.metrics,
            ):
                return self._run(at_ms)
        finally:
            for name, value in self.kernel_counters.items():
                delta = value - flushed[name]
                if delta:
                    self.client.registry.inc(name, delta, engine=self.client.engine)

    def _run(self, at_ms: float) -> BranchOutcome:
        required = self.plan.required_subqueries()
        optional_groups = self.plan.optional_groups()
        tracer = self.client.tracer

        if self.plan.disjoint and not optional_groups:
            with tracer.span("phase1", t0=at_ms, disjoint=True) as span:
                relation, end = self._execute_subquery(required[0], at_ms)
                span.set(rows=len(relation)).end(end)
            relation = self._apply_residue(relation)
            return BranchOutcome(relation, end, self.join_cost_units)

        now = at_ms
        components: list[_Component] = []

        # Phase one: non-delayed required subqueries, concurrently.
        eager = [sq for sq in required if not sq.delayed]
        eager_results: list[tuple[Subquery, Relation]] = []
        with tracer.span("phase1", t0=now, subqueries=[sq.id for sq in eager]) as span:
            phase_end = now
            for subquery in eager:
                relation, end = self._execute_subquery(subquery, now)
                phase_end = max(phase_end, end)
                eager_results.append((subquery, relation))
            now = phase_end

            # Join connected eager results (DP order inside each component).
            components = self._join_eager(eager_results, now)
            span.set(rows=sum(len(r) for __, r in eager_results)).end(now)

        # Phase two: delayed required subqueries, most selective first.
        delayed = [sq for sq in required if sq.delayed]
        if delayed:
            with tracer.span(
                "phase2", t0=now, subqueries=[sq.id for sq in delayed]
            ) as span:
                while delayed:
                    delayed.sort(key=lambda sq: self._refined_cardinality(sq, components))
                    subquery = delayed.pop(0)
                    now = self._run_delayed(subquery, components, now)
                span.end(now)

        # Combine remaining components (cross product only if genuinely
        # disconnected).
        relation = self._combine_components(components, now)

        # OPTIONAL groups: evaluate with bindings, left join.
        for group_id in sorted(optional_groups):
            with tracer.span("optional_group", t0=now, group=group_id) as span:
                relation, now = self._run_optional_group(
                    optional_groups[group_id], relation, now
                )
                span.set(rows=len(relation)).end(now)

        relation = self._apply_residue(relation)
        now += self.mediator.scan_ms(len(relation))
        return BranchOutcome(relation, now, self.join_cost_units)

    def _join_eager(
        self, eager_results: list[tuple[Subquery, Relation]], at_ms: float = 0.0
    ) -> list[_Component]:
        """Group eager relations into connected components and join each."""
        components: list[_Component] = []
        if not eager_results:
            return components
        remaining = list(eager_results)
        while remaining:
            seed_sq, seed_rel = remaining.pop(0)
            group = [(seed_sq, seed_rel)]
            group_vars = set(seed_rel.vars)
            changed = True
            while changed:
                changed = False
                for item in list(remaining):
                    if set(item[1].vars) & group_vars:
                        group.append(item)
                        group_vars |= set(item[1].vars)
                        remaining.remove(item)
                        changed = True
            relations = [relation for __, relation in group]
            if len(relations) == 1:
                joined = relations[0]
            else:
                with self.client.tracer.span(
                    "join_ordering",
                    t0=at_ms,
                    algorithm="greedy" if self.config.greedy_join_order else "dp",
                    inputs=len(relations),
                ) as span:
                    plan = plan_joins(
                        relations,
                        greedy=self.config.greedy_join_order,
                        hints=self._join_hints(group),
                    )
                    joined, cost = execute_plan(plan, relations)
                    self.join_cost_units += cost
                    span.set(rows=len(joined), join_cost_units=cost).end(at_ms)
                    self._audit_join_plan(plan, joined, cost, span)
                self.client.registry.inc(
                    "mediator_join_rows_total", len(joined), engine=self.client.engine
                )
            self._guard_rows(len(joined))
            components.append(_Component(relation=joined, variables=set(joined.vars)))
        return components

    def _join_hints(self, group: list[tuple[Subquery, Relation]]) -> JoinHints | None:
        """Statistics hints for one eager join group.

        Uses only summaries the provider already fetched this query, so
        building the hints is free in virtual time; returns None (the
        min-rule estimator) when no provider is installed or nothing is
        provable.
        """
        provider = getattr(self.client, "stats", None)
        if provider is None:
            return None
        hints = JoinHints()
        for index, (subquery, relation) in enumerate(group):
            for variable in relation.vars:
                count = provider.distinct_values(subquery, variable)
                if count is not None:
                    hints.var_counts[(index, variable)] = float(count)
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                left_sq, left_rel = group[i]
                right_sq, right_rel = group[j]
                for variable in set(left_rel.vars) & set(right_rel.vars):
                    rows = provider.pair_fanout(left_sq, variable, right_sq)
                    if rows is None:
                        continue
                    key = frozenset((i, j))
                    known = hints.pair_rows.get(key)
                    hints.pair_rows[key] = rows if known is None else min(known, rows)
        if not hints.var_counts and not hints.pair_rows:
            return None
        return hints

    def _run_delayed(
        self, subquery: Subquery, components: list[_Component], now: float
    ) -> float:
        bindings = self._bindings_for(components, subquery.variables())
        sources = subquery.sources

        if bindings is not None and self.config.refine_sources and self._is_generic(subquery):
            sources, now = self._refine_generic_sources(subquery, bindings, sources, now)

        if bindings is None or not bindings[1]:
            if bindings is not None and not bindings[1]:
                # Connected component is empty: the join is empty, skip
                # the remote work entirely.
                relation = Relation(
                    subquery.projection(self.needed_vars)
                    or tuple(sorted(subquery.variables(), key=lambda v: v.name))
                )
                end = now
            else:
                relation, end = self._execute_subquery(subquery, now)
        else:
            bind_vars, rows, __ = bindings
            relation, end = self._execute_bound_subquery(
                subquery, bind_vars, rows, sources, now
            )
        self._merge_into_components(components, relation, end)
        return end

    def _is_generic(self, subquery: Subquery) -> bool:
        return any(
            isinstance(pattern.predicate, Variable) for pattern in subquery.patterns
        )

    def _refine_generic_sources(
        self,
        subquery: Subquery,
        bindings: tuple[tuple[Variable, ...], list[tuple[Term | None, ...]], int],
        sources: tuple[str, ...],
        now: float,
    ) -> tuple[tuple[str, ...], float]:
        """Alg 3 line 13: shrink the source list of generic patterns."""
        bind_vars, rows, __ = bindings
        sample = rows[:3]
        bound_patterns: list[TriplePattern] = []
        for pattern in subquery.patterns:
            shared = pattern.variables() & set(bind_vars)
            if not shared:
                continue
            for row in sample:
                mapping = {
                    var: value
                    for var, value in zip(bind_vars, row)
                    if value is not None and var in shared
                }
                bound_patterns.append(pattern.bind(mapping))
        if not bound_patterns:
            return sources, now
        refined, end = refine_sources_with_bindings(
            self.client,
            subquery.patterns[0],
            bind_vars[0],
            bound_patterns,
            sources,
            now,
        )
        return (refined or sources), end

    def _combine_components(
        self, components: list[_Component], at_ms: float = 0.0
    ) -> Relation:
        if not components:
            return Relation.unit()
        relations = [component.relation for component in components]
        if len(relations) == 1:
            return relations[0]
        with self.client.tracer.span(
            "mediator_join", t0=at_ms, inputs=len(relations), cross_product=True
        ) as span:
            plan = plan_joins(relations, greedy=True)
            joined, cost = execute_plan(plan, relations)
            self.join_cost_units += cost
            span.set(rows=len(joined), join_cost_units=cost).end(at_ms)
            self._audit_join_plan(plan, joined, cost, span)
        self._guard_rows(len(joined))
        return joined

    def _run_optional_group(
        self, subqueries: list[Subquery], base: Relation, now: float
    ) -> tuple[Relation, float]:
        """Evaluate one OPTIONAL block and left-join it onto the base."""
        group_id = subqueries[0].optional_group
        base_component = _Component(relation=base, variables=set(base.vars))
        group_relation: Relation | None = None
        end = now
        for subquery in sorted(subqueries, key=lambda sq: sq.estimated_cardinality):
            context = [base_component]
            if group_relation is not None:
                context.append(
                    _Component(relation=group_relation, variables=set(group_relation.vars))
                )
            bindings = self._bindings_for(context, subquery.variables())
            if bindings is not None and bindings[1]:
                bind_vars, rows, __ = bindings
                relation, end = self._execute_bound_subquery(
                    subquery, bind_vars, rows, subquery.sources, now
                )
            else:
                relation, end = self._execute_subquery(subquery, now)
            now = end
            if group_relation is None:
                group_relation = relation
            else:
                group_relation = group_relation.join(relation)
                self.join_cost_units += kernels.last_join_cost()
            self._guard_rows(len(group_relation))
        if group_relation is None:
            return base, now
        for expression in self.plan.optional_residue.get(group_id, ()):
            group_relation = group_relation.filter(make_filter_predicate(expression))
        joined = base.left_join(group_relation)
        self.join_cost_units += kernels.last_join_cost()
        return joined, now

    def _apply_residue(self, relation: Relation) -> Relation:
        for expression in self.plan.residue_filters:
            predicate = make_filter_predicate(expression)
            relation = relation.filter(predicate)
        return relation
