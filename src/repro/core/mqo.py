"""Multi-query optimization (paper Sec V: "Lusail also supports
multi-query optimization").

When a batch of queries is decomposed by LADE, different queries often
produce identical subqueries (same patterns, same filters, same relevant
endpoints).  The multi-query executor evaluates each distinct *eager*
subquery once per batch and shares the shipped relation across queries,
on top of the ASK/check/COUNT caches the engine already shares.

Matching goes through :class:`SubqueryMatcher`, which keys subqueries on
their **canonical skeleton** (:func:`repro.sparql.skeleton.canonicalize_query`)
rather than raw structure: two subqueries that differ only in variable
names share one key, while embedded constants stay part of the key as
lifted VALUES data and the relevant-endpoint set always participates.
The same matcher drives in-flight cross-query sharing in the serving
layer (:mod:`repro.serve`), so batch MQO and concurrent MQO recognize
exactly the same overlaps.

Delayed subqueries are not shared: their results depend on the bindings
found by the rest of their own query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import LusailEngine
from repro.core.execution.scheduler import BranchScheduler
from repro.planning.base_engine import ExecutionOutcome
from repro.rdf.terms import Variable
from repro.relational.relation import Relation
from repro.sparql.ast import SelectQuery
from repro.sparql.skeleton import canonicalize_query


class SubqueryMatcher:
    """Canonical-skeleton keys for cross-query subquery matching.

    ``canonical(subquery)`` returns ``(key, rename)``: a hashable key
    two structurally-equivalent subqueries share regardless of variable
    naming, and the injective original→canonical variable map needed to
    translate relations between the two namings.  Keys always include
    the subquery's relevant-endpoint set — the same patterns evaluated
    against different sources ship different relations.

    Canonicalization is memoized on the raw structural key, so repeated
    lookups for the same decomposition output are dictionary-cheap.
    """

    __slots__ = ("_memo",)

    def __init__(self):
        self._memo: dict[tuple, tuple] = {}

    @staticmethod
    def raw_key(subquery) -> tuple:
        return (subquery.patterns, subquery.filters, subquery.sources)

    @staticmethod
    def _occurrence_order(subquery) -> tuple:
        """All subquery variables, ordered by first occurrence in the
        patterns (then filters).  Projecting the skeleton query in this
        order keeps the canonical rename independent of the original
        variable *names* — a sorted SELECT * projection would leak them.
        """
        order: list = []
        seen: set = set()
        for pattern in subquery.patterns:
            for term in (pattern.subject, pattern.predicate, pattern.object):
                if isinstance(term, Variable) and term not in seen:
                    seen.add(term)
                    order.append(term)
        for expression in subquery.filters:
            for variable in sorted(
                expression.variables() - seen, key=lambda v: v.name
            ):
                seen.add(variable)
                order.append(variable)
        return tuple(order)

    def canonical(self, subquery) -> tuple[tuple, dict]:
        raw = self.raw_key(subquery)
        entry = self._memo.get(raw)
        if entry is None:
            query = subquery.to_select(self._occurrence_order(subquery))
            canon = canonicalize_query(query)
            if canon is None:  # defensive: to_select(()) has no VALUES
                entry = (("raw", raw), {})
            else:
                entry = (("skeleton", canon.query, subquery.sources), canon.rename)
            self._memo[raw] = entry
        return entry

    def key(self, subquery) -> tuple:
        return self.canonical(subquery)[0]


@dataclass
class SharedSubqueryCache:
    """Batch-scoped store of evaluated subquery relations.

    Relations are stored under **canonical** variable names; lookups
    rename them (column adoption, no row copies) into the requesting
    subquery's own namespace.
    """

    matcher: SubqueryMatcher = field(default_factory=SubqueryMatcher)
    relations: dict[tuple, Relation] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def key(self, subquery) -> tuple:
        return self.matcher.key(subquery)

    def get(self, subquery, projection) -> Relation | None:
        """A cached relation covering ``projection``, renamed for the
        requester, or None (counted as a miss)."""
        key, rename = self.matcher.canonical(subquery)
        cached = self.relations.get(key)
        if cached is not None:
            needed = {rename.get(var, var) for var in projection}
            if needed <= set(cached.vars):
                self.hits += 1
                return self._rename(cached, rename, tuple(projection))
        self.misses += 1
        return None

    @staticmethod
    def _rename(cached: Relation, rename: dict, projection: tuple) -> Relation:
        inverse = {canon: orig for orig, canon in rename.items()}
        requester_vars = tuple(inverse.get(var, var) for var in cached.vars)
        # The relation is already on the mediator: no remote requests,
        # no added virtual time.  Adopt the cached columns under the
        # requester's names — relational operators never mutate inputs.
        renamed = Relation._from_columns(
            requester_vars, cached.columns, len(cached), partitions=cached.partitions
        )
        if requester_vars == projection:
            return renamed
        # Narrower need: re-project (a per-column copy).
        reused = renamed.project(projection)
        reused.partitions = cached.partitions
        return reused

    def put(self, subquery, relation: Relation) -> None:
        """Store ``relation`` unless a wider projection is already cached."""
        key, rename = self.matcher.canonical(subquery)
        existing = self.relations.get(key)
        if existing is not None and len(existing.vars) > len(relation.vars):
            return
        canonical_vars = tuple(rename.get(var, var) for var in relation.vars)
        self.relations[key] = Relation._from_columns(
            canonical_vars, relation.columns, len(relation), partitions=relation.partitions
        )


class _SharingScheduler(BranchScheduler):
    """BranchScheduler that consults the batch cache for eager subqueries."""

    shared_cache: SharedSubqueryCache | None = None

    def _execute_subquery(self, subquery, at_ms, kind=None):
        cache = self.shared_cache
        projection = subquery.projection(self.needed_vars) or tuple(
            sorted(subquery.variables(), key=lambda v: v.name)
        )
        if cache is not None and subquery.optional_group is None:
            reused = cache.get(subquery, projection)
            if reused is not None:
                return reused, at_ms
        if kind is None:
            relation, end = super()._execute_subquery(subquery, at_ms)
        else:
            relation, end = super()._execute_subquery(subquery, at_ms, kind)
        if cache is not None and subquery.optional_group is None and not subquery.delayed:
            cache.put(subquery, relation)
        return relation, end


@dataclass
class BatchOutcome:
    """Results of a batch execution plus sharing statistics."""

    outcomes: list[ExecutionOutcome]
    shared_hits: int
    shared_misses: int
    total_requests: int

    def __iter__(self):
        return iter(self.outcomes)


class MultiQueryExecutor:
    """Execute a batch of queries with cross-query subquery sharing."""

    def __init__(self, engine: LusailEngine):
        self.engine = engine

    def execute_batch(self, queries: list[SelectQuery | str]) -> BatchOutcome:
        cache = SharedSubqueryCache()
        original = self.engine.scheduler_class
        _SharingScheduler.shared_cache = cache
        self.engine.scheduler_class = _SharingScheduler
        try:
            outcomes = [self.engine.execute(query) for query in queries]
        finally:
            self.engine.scheduler_class = original
            _SharingScheduler.shared_cache = None
        total_requests = sum(outcome.metrics.request_count() for outcome in outcomes)
        return BatchOutcome(
            outcomes=outcomes,
            shared_hits=cache.hits,
            shared_misses=cache.misses,
            total_requests=total_requests,
        )
