"""Multi-query optimization (paper Sec V: "Lusail also supports
multi-query optimization").

When a batch of queries is decomposed by LADE, different queries often
produce identical subqueries (same patterns, same filters, same relevant
endpoints).  The multi-query executor evaluates each distinct *eager*
subquery once per batch and shares the shipped relation across queries,
on top of the ASK/check/COUNT caches the engine already shares.

Delayed subqueries are not shared: their results depend on the bindings
found by the rest of their own query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import LusailEngine
from repro.core.execution.scheduler import BranchScheduler
from repro.planning.base_engine import ExecutionOutcome
from repro.relational.relation import Relation
from repro.sparql.ast import SelectQuery


@dataclass
class SharedSubqueryCache:
    """Batch-scoped store of evaluated subquery relations."""

    relations: dict[tuple, Relation] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    @staticmethod
    def key(subquery) -> tuple:
        return (subquery.patterns, subquery.filters, subquery.sources)

    def get(self, subquery) -> Relation | None:
        relation = self.relations.get(self.key(subquery))
        if relation is None:
            self.misses += 1
            return None
        self.hits += 1
        return relation

    def put(self, subquery, relation: Relation) -> None:
        self.relations[self.key(subquery)] = relation


class _SharingScheduler(BranchScheduler):
    """BranchScheduler that consults the batch cache for eager subqueries."""

    shared_cache: SharedSubqueryCache | None = None

    def _execute_subquery(self, subquery, at_ms, kind=None):
        cache = self.shared_cache
        projection = subquery.projection(self.needed_vars) or tuple(
            sorted(subquery.variables(), key=lambda v: v.name)
        )
        if cache is not None and subquery.optional_group is None:
            cached = cache.relations.get(cache.key(subquery))
            if cached is not None and set(projection) <= set(cached.vars):
                # The relation is already on the mediator: no remote
                # requests, no added virtual time.
                cache.hits += 1
                if tuple(projection) == cached.vars:
                    # Same schema: share the cached columns outright —
                    # relational operators never mutate their inputs.
                    return cached, at_ms
                # Narrower need: re-project (a per-column copy).
                reused = cached.project(projection)
                reused.partitions = cached.partitions
                return reused, at_ms
            cache.misses += 1
        if kind is None:
            relation, end = super()._execute_subquery(subquery, at_ms)
        else:
            relation, end = super()._execute_subquery(subquery, at_ms, kind)
        if cache is not None and subquery.optional_group is None and not subquery.delayed:
            existing = cache.relations.get(cache.key(subquery))
            # Keep the widest fetched projection for maximal reuse.
            if existing is None or len(relation.vars) >= len(existing.vars):
                cache.put(subquery, relation)
        return relation, end


@dataclass
class BatchOutcome:
    """Results of a batch execution plus sharing statistics."""

    outcomes: list[ExecutionOutcome]
    shared_hits: int
    shared_misses: int
    total_requests: int

    def __iter__(self):
        return iter(self.outcomes)


class MultiQueryExecutor:
    """Execute a batch of queries with cross-query subquery sharing."""

    def __init__(self, engine: LusailEngine):
        self.engine = engine

    def execute_batch(self, queries: list[SelectQuery | str]) -> BatchOutcome:
        cache = SharedSubqueryCache()
        original = self.engine.scheduler_class
        _SharingScheduler.shared_cache = cache
        self.engine.scheduler_class = _SharingScheduler
        try:
            outcomes = [self.engine.execute(query) for query in queries]
        finally:
            self.engine.scheduler_class = original
            _SharingScheduler.shared_cache = None
        total_requests = sum(outcome.metrics.request_count() for outcome in outcomes)
        return BatchOutcome(
            outcomes=outcomes,
            shared_hits=cache.hits,
            shared_misses=cache.misses,
            total_requests=total_requests,
        )
