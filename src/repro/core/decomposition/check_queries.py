"""Formulation of Lusail's locality check queries (paper Fig 6).

Given a join variable ``v`` shared by two triple patterns, a check query
asks one endpoint: *do you hold an instance of v matching one pattern
that does not locally match the other?*  A non-empty answer at any
relevant endpoint makes ``v`` a **global join variable**: its patterns
must go to different subqueries and be joined at the mediator.

Three cases (paper Sec IV-A):

* **object/subject** — ``v`` is object of TPi and subject of TPj: check
  ``v(TPi) - v(TPj)`` only (instances referenced by TPi that are not
  described locally — exactly the interlink case of Fig 1);
* **subject only** — check both directions of the set difference;
* **object only** — likewise both directions.

The check carries ``LIMIT 1`` (only emptiness matters), keeps an
``rdf:type`` constraint on ``v`` when the query has one, and replaces
constants inside the FILTER side with fresh variables (the check cares
about *any* local match of the predicate, not the specific constant).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rdf.namespaces import RDF_TYPE
from repro.rdf.terms import Variable, is_concrete
from repro.rdf.triple import TriplePattern
from repro.sparql.ast import (
    BGP,
    ExistsExpr,
    Filter,
    GroupPattern,
    SelectQuery,
    SubSelect,
)


@dataclass(frozen=True)
class CheckQuery:
    """One locality check, bound to the endpoints it must run at.

    Besides the executable ``query``, the check carries its structure
    (``outer`` pattern, generalized ``inner`` pattern, optional
    ``type_pattern`` constraint on the variable) so the characteristic-set
    statistics provider can answer provably-empty / provably-non-empty
    checks from local summaries without parsing the query back apart.
    """

    variable: Variable
    pair: frozenset  # frozenset[TriplePattern]
    query: SelectQuery
    sources: tuple[str, ...]
    outer: TriplePattern | None = None
    inner: TriplePattern | None = None
    type_pattern: TriplePattern | None = None


def _generalize(pattern: TriplePattern, keep: Variable) -> TriplePattern:
    """Replace constants in the FILTER-side pattern with variables.

    Only the checked variable is correlated with the outer query; every
    constant position becomes a variable so the inner probe matches any
    local use of the predicate.  The replacement names are deterministic
    — identical check queries must hash equal across executions so the
    check cache (paper Fig 10b/c) actually hits.
    """
    subject = pattern.subject if pattern.subject == keep else (
        pattern.subject if isinstance(pattern.subject, Variable) else Variable("__chk_s")
    )
    object_ = pattern.object if pattern.object == keep else (
        pattern.object if isinstance(pattern.object, Variable) else Variable("__chk_o")
    )
    # Predicates stay: the probe is about the predicate's local extension.
    return TriplePattern(subject, pattern.predicate, object_)


def type_constraint_for(
    variable: Variable, patterns: list[TriplePattern]
) -> TriplePattern | None:
    """The ``(v, rdf:type, T)`` pattern constraining ``v``, if the query has one."""
    for pattern in patterns:
        if (
            pattern.subject == variable
            and pattern.predicate == RDF_TYPE
            and is_concrete(pattern.object)
        ):
            return pattern
    return None


def formulate_check(
    variable: Variable,
    outer: TriplePattern,
    inner: TriplePattern,
    type_pattern: TriplePattern | None,
) -> SelectQuery:
    """Build ``SELECT ?v WHERE { [type] outer FILTER NOT EXISTS { SELECT ?v
    WHERE { inner' } } } LIMIT 1`` — Fig 6 of the paper."""
    inner_general = _generalize(inner, keep=variable)
    inner_select = SelectQuery(
        where=GroupPattern([BGP([inner_general])]),
        select_vars=(variable,),
    )
    outer_triples = []
    if type_pattern is not None and type_pattern != outer:
        outer_triples.append(type_pattern)
    outer_triples.append(outer)
    where = GroupPattern(
        [
            BGP(outer_triples),
            Filter(ExistsExpr(GroupPattern([SubSelect(inner_select)]), negated=True)),
        ]
    )
    return SelectQuery(where=where, select_vars=(variable,), limit=1)


def checks_for_pair(
    variable: Variable,
    pattern_a: TriplePattern,
    pattern_b: TriplePattern,
    all_patterns: list[TriplePattern],
    sources: tuple[str, ...],
) -> list[CheckQuery]:
    """All check queries needed to decide locality of one pattern pair.

    Returns an empty list when no check is needed (same pattern, or the
    variable appears in predicate position — handled conservatively by
    the caller).
    """
    pair = frozenset((pattern_a, pattern_b))
    if len(pair) < 2:
        return []
    type_pattern = type_constraint_for(variable, all_patterns)

    roles_a = pattern_a.variable_positions(variable)
    roles_b = pattern_b.variable_positions(variable)
    checks: list[CheckQuery] = []

    def add(outer: TriplePattern, inner: TriplePattern) -> None:
        query = formulate_check(variable, outer, inner, type_pattern)
        checks.append(
            CheckQuery(
                variable=variable,
                pair=pair,
                query=query,
                sources=sources,
                outer=outer,
                inner=_generalize(inner, keep=variable),
                type_pattern=type_pattern,
            )
        )

    a_subject = "subject" in roles_a
    a_object = "object" in roles_a
    b_subject = "subject" in roles_b
    b_object = "object" in roles_b

    if a_object and b_subject:
        # v referenced by A, described by B: check v(A) - v(B).
        add(pattern_a, pattern_b)
    elif a_subject and b_object:
        add(pattern_b, pattern_a)
    elif a_subject and b_subject:
        # Subject-only: both directions must be empty.
        add(pattern_a, pattern_b)
        add(pattern_b, pattern_a)
    elif a_object and b_object:
        # Object-only: both directions must be empty.
        add(pattern_a, pattern_b)
        add(pattern_b, pattern_a)
    return checks
