"""Detecting global join variables (paper Algorithm 1).

A variable shared by two triple patterns is a **global join variable
(GJV)** when the patterns cannot be answered together by single
endpoints.  Two ways to become one:

1. the patterns' relevant source lists differ (no set of endpoints could
   answer both completely), or
2. a locality check query (Fig 6) returns a non-empty result at some
   relevant endpoint — an actual data instance matches one pattern but
   not the other locally.

The detector returns, for each GJV, the set of pattern pairs that caused
it; the decomposer must keep those pairs in different subqueries.

Conservative extensions beyond the paper's pseudo-code:

* a join variable appearing in *predicate* position is treated as global
  outright (its extension cannot be probed with Fig 6 checks);
* patterns with variable predicates make any shared variable global for
  the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.endpoint.client import FederationClient
from repro.rdf.terms import Variable
from repro.rdf.triple import TriplePattern
from repro.core.decomposition.check_queries import CheckQuery, checks_for_pair
from repro.planning.source_selection import SourceSelection


@dataclass
class GJVResult:
    """GJVs plus the evidence pairs behind each of them."""

    variables: dict[Variable, set[frozenset]] = field(default_factory=dict)
    check_queries_run: int = 0
    #: Checks answered from characteristic-set summaries (provably empty
    #: or provably non-empty) without issuing the remote check query.
    check_queries_skipped: int = 0

    def add(self, variable: Variable, pair: frozenset) -> None:
        self.variables.setdefault(variable, set()).add(pair)

    def is_global(self, variable: Variable) -> bool:
        return variable in self.variables

    def conflicting_pairs(self) -> set[frozenset]:
        pairs: set[frozenset] = set()
        for evidence in self.variables.values():
            pairs |= evidence
        return pairs


def join_entities(patterns: list[TriplePattern]) -> dict[Variable, list[TriplePattern]]:
    """Variables appearing in two or more triple patterns, with their patterns."""
    by_variable: dict[Variable, list[TriplePattern]] = {}
    for pattern in patterns:
        for variable in pattern.variables():
            by_variable.setdefault(variable, []).append(pattern)
    return {variable: pats for variable, pats in by_variable.items() if len(pats) >= 2}


def _appears_as_predicate(variable: Variable, patterns: list[TriplePattern]) -> bool:
    return any(pattern.predicate == variable for pattern in patterns)


def detect_gjvs(
    client: FederationClient,
    patterns: list[TriplePattern],
    selection: SourceSelection,
    at_ms: float,
) -> tuple[GJVResult, float]:
    """Run Algorithm 1; returns the GJV set and the virtual end time.

    Assumes source selection has already run (its results are in
    ``selection``).  Check queries for different variables are issued
    concurrently; per endpoint they serialize on the virtual lane.
    """
    result = GJVResult()
    variables = join_entities(patterns)
    pending_checks: list[CheckQuery] = []

    for variable, var_patterns in variables.items():
        if _appears_as_predicate(variable, var_patterns):
            # Cannot probe a predicate's locality; conservatively global.
            for pair in combinations(var_patterns, 2):
                result.add(variable, frozenset(pair))
            continue

        is_global = False
        for pattern_a, pattern_b in combinations(var_patterns, 2):
            if selection.relevant(pattern_a) != selection.relevant(pattern_b):
                result.add(variable, frozenset((pattern_a, pattern_b)))
                is_global = True
        if is_global:
            # Paper line 12: once the source lists differ the variable is
            # global; no check queries needed.
            continue

        for pattern_a, pattern_b in combinations(var_patterns, 2):
            sources = selection.relevant(pattern_a)
            if not sources:
                continue
            if pattern_a.predicate == pattern_b.predicate and pattern_a == pattern_b:
                continue
            has_variable_predicate = isinstance(pattern_a.predicate, Variable) or isinstance(
                pattern_b.predicate, Variable
            )
            if has_variable_predicate:
                result.add(variable, frozenset((pattern_a, pattern_b)))
                continue
            pending_checks.extend(
                checks_for_pair(variable, pattern_a, pattern_b, patterns, sources)
            )

    finish = at_ms
    provider = getattr(client, "stats", None)
    with client.tracer.span(
        "gjv_detection", t0=at_ms, join_variables=[v.name for v in variables]
    ) as detection_span:
        for check in pending_checks:
            # Skip pairs already proven global by an earlier check.
            if check.pair in result.variables.get(check.variable, set()):
                continue
            for endpoint_name in check.sources:
                verdict = None
                if provider is not None:
                    # Characteristic-set coverage decides many checks
                    # outright: provably empty skips the probe, provably
                    # non-empty marks the variable global without one.
                    verdict, end = provider.check_empty(endpoint_name, check, at_ms)
                if verdict is not None:
                    non_empty = not verdict
                    result.check_queries_skipped += 1
                else:
                    with client.tracer.span(
                        "check_query",
                        t0=at_ms,
                        variable=check.variable.name,
                        endpoint=endpoint_name,
                    ) as span:
                        non_empty, end = client.check(endpoint_name, check.query, at_ms)
                        span.set(non_empty=non_empty, requests=1).end(end)
                    result.check_queries_run += 1
                finish = max(finish, end)
                if non_empty:
                    result.add(check.variable, check.pair)
                    break
        detection_span.set(
            gjvs=[v.name for v in result.variables],
            check_queries=result.check_queries_run,
            check_queries_skipped=result.check_queries_skipped,
        ).end(finish)
    return result, finish
