"""LADE: global join variable detection and query decomposition."""

from repro.core.decomposition.check_queries import CheckQuery, checks_for_pair, formulate_check
from repro.core.decomposition.decomposer import decompose
from repro.core.decomposition.gjv import GJVResult, detect_gjvs, join_entities
from repro.core.decomposition.subquery import DecompositionPlan, Subquery, values_block

__all__ = [
    "CheckQuery",
    "DecompositionPlan",
    "GJVResult",
    "Subquery",
    "checks_for_pair",
    "decompose",
    "detect_gjvs",
    "formulate_check",
    "join_entities",
    "values_block",
]
