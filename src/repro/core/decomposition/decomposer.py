"""Locality-aware query decomposition (paper Algorithm 2).

Given the GJV evidence from Algorithm 1, split a conjunctive branch into
subqueries such that:

* all patterns in a subquery have identical relevant source lists, and
* no pattern pair that caused a GJV sits in the same subquery.

The algorithm walks the query graph (nodes = terms, edges = triple
patterns) starting from the GJVs, growing subqueries greedily, then runs
a merge phase that coalesces compatible subqueries.  Patterns in
components no GJV can reach are grouped afterwards under the same
constraints, so every triple pattern lands in exactly one subquery.
"""

from __future__ import annotations

from repro.core.decomposition.gjv import GJVResult
from repro.rdf.terms import PatternTerm, Variable
from repro.rdf.triple import TriplePattern
from repro.planning.source_selection import SourceSelection


def _pattern_nodes(pattern: TriplePattern) -> list[PatternTerm]:
    """Graph nodes a pattern is incident to: its variables.

    Constants are deliberately not join nodes.  Two patterns sharing
    only a concrete term (the ``owl:sameAs`` predicate, or a constant
    object that both reference) may still match at *different*
    endpoints; keeping them in separate subqueries and joining at the
    mediator preserves union-graph semantics, whereas grouping them
    would silently turn the combination into a per-endpoint product.
    """
    return [
        position
        for position in (pattern.subject, pattern.predicate, pattern.object)
        if isinstance(position, Variable)
    ]


def _is_connected(patterns: list[TriplePattern]) -> bool:
    """True if the patterns form one component under shared variables."""
    if len(patterns) <= 1:
        return True
    remaining = list(patterns)
    component_vars = set(remaining.pop(0).variables())
    changed = True
    while changed and remaining:
        changed = False
        for pattern in list(remaining):
            if pattern.variables() & component_vars or not pattern.variables():
                component_vars |= pattern.variables()
                remaining.remove(pattern)
                changed = True
    return not remaining


class _QueryGraph:
    def __init__(self, patterns: list[TriplePattern]):
        self.patterns = patterns
        self._incidence: dict[PatternTerm, list[TriplePattern]] = {}
        for pattern in patterns:
            for node in _pattern_nodes(pattern):
                self._incidence.setdefault(node, []).append(pattern)

    def edges_at(self, node: PatternTerm) -> list[TriplePattern]:
        return self._incidence.get(node, [])


def _compatible(
    group: list[TriplePattern],
    pattern: TriplePattern,
    conflicts: set[frozenset],
    selection: SourceSelection,
) -> bool:
    """Can ``pattern`` join ``group`` in one subquery?"""
    if not group:
        return True
    if selection.relevant(group[0]) != selection.relevant(pattern):
        return False
    return all(frozenset((member, pattern)) not in conflicts for member in group)


def _groups_shared_variables(a: list[TriplePattern], b: list[TriplePattern]) -> bool:
    vars_a: set[Variable] = set()
    for pattern in a:
        vars_a |= pattern.variables()
    return any(vars_a & pattern.variables() for pattern in b)


def _merge_groups(
    groups: list[list[TriplePattern]],
    conflicts: set[frozenset],
    selection: SourceSelection,
) -> list[list[TriplePattern]]:
    """Paper's mergeSubQ: coalesce compatible subqueries to a fixpoint."""
    merged = [list(group) for group in groups]
    changed = True
    while changed:
        changed = False
        for i in range(len(merged)):
            if not merged[i]:
                continue
            for j in range(i + 1, len(merged)):
                if not merged[j]:
                    continue
                if not _groups_shared_variables(merged[i], merged[j]):
                    continue
                if selection.relevant(merged[i][0]) != selection.relevant(merged[j][0]):
                    continue
                cross_conflict = any(
                    frozenset((a, b)) in conflicts for a in merged[i] for b in merged[j]
                )
                if cross_conflict:
                    continue
                merged[i].extend(merged[j])
                merged[j] = []
                changed = True
    return [group for group in merged if group]


def decompose(
    patterns: list[TriplePattern],
    gjvs: GJVResult,
    selection: SourceSelection,
    gjv_order: list[Variable] | None = None,
) -> list[list[TriplePattern]]:
    """Split a conjunctive pattern list into locality-safe groups.

    Returns groups of triple patterns; every input pattern appears in
    exactly one group.  ``gjv_order`` overrides the (deterministic,
    name-sorted) order in which GJV-rooted traversals run — the paper
    notes that "the generated set of subqueries may change depending on
    the order in which variables are selected", which
    :func:`best_decomposition` exploits.
    """
    if not patterns:
        return []

    source_lists = {selection.relevant(pattern) for pattern in patterns}
    if not gjvs.variables and len(source_lists) == 1 and _is_connected(patterns):
        # Disjoint query (Alg 2 line 2): the whole branch is one subquery.
        # Connectivity matters: patterns sharing no variable must stay in
        # separate subqueries or their cross-endpoint product is lost.
        return [list(patterns)]

    conflicts = gjvs.conflicting_pairs()
    graph = _QueryGraph(patterns)
    visited: set[TriplePattern] = set()
    groups: list[list[TriplePattern]] = []

    def group_at(node: PatternTerm) -> list[TriplePattern] | None:
        """The existing group holding a pattern incident to ``node``."""
        for group in groups:
            for member in group:
                if node in _pattern_nodes(member):
                    return group
        return None

    def traverse(root: PatternTerm) -> None:
        stack: list[PatternTerm] = [root]
        seen_nodes: set[PatternTerm] = set()
        while stack:
            vertex = stack.pop()
            if vertex in seen_nodes:
                continue
            seen_nodes.add(vertex)
            edges = [edge for edge in graph.edges_at(vertex) if edge not in visited]
            if not edges:
                continue
            parent = group_at(vertex)
            for edge in edges:
                if edge in visited:
                    continue
                if parent is not None and _compatible(parent, edge, conflicts, selection):
                    parent.append(edge)
                else:
                    new_group = [edge]
                    groups.append(new_group)
                    # Subsequent edges at this vertex may join the new group.
                    if parent is None:
                        parent = new_group
                visited.add(edge)
                for destination in _pattern_nodes(edge):
                    if destination != vertex and destination not in seen_nodes:
                        stack.append(destination)

    # Branch phase: one traversal per GJV (deterministic order unless
    # the caller provides one).
    order = gjv_order if gjv_order is not None else sorted(
        gjvs.variables, key=lambda v: v.name
    )
    for variable in order:
        traverse(variable)
        if len(visited) == len(patterns):
            break

    # Components unreachable from any GJV (including the no-GJV,
    # heterogeneous-sources case): traverse from their own nodes.
    for pattern in patterns:
        if pattern not in visited:
            nodes = _pattern_nodes(pattern)
            if nodes:
                traverse(nodes[0])
            if pattern not in visited:
                # Degenerate: fully concrete pattern.
                groups.append([pattern])
                visited.add(pattern)

    groups = _merge_groups(groups, conflicts, selection)

    # Restore original pattern order inside each group for determinism.
    order = {pattern: index for index, pattern in enumerate(patterns)}
    for group in groups:
        group.sort(key=lambda pattern: order[pattern])
    groups.sort(key=lambda group: order[group[0]])
    return groups


def enumerate_decompositions(
    patterns: list[TriplePattern],
    gjvs: GJVResult,
    selection: SourceSelection,
    max_orders: int = 24,
) -> list[list[list[TriplePattern]]]:
    """All distinct decompositions reachable by permuting the GJV order.

    The paper (Sec IV-C) observes that different traversal orders yield
    different — all correct — subquery sets, and defers choosing among
    them to future work.  This enumerates them (bounded by
    ``max_orders`` permutations) and deduplicates structurally.
    """
    from itertools import islice, permutations

    variables = sorted(gjvs.variables, key=lambda v: v.name)
    if not variables:
        return [decompose(patterns, gjvs, selection)]
    seen: set[tuple] = set()
    distinct: list[list[list[TriplePattern]]] = []
    for order in islice(permutations(variables), max_orders):
        groups = decompose(patterns, gjvs, selection, gjv_order=list(order))
        key = tuple(tuple(group) for group in groups)
        if key not in seen:
            seen.add(key)
            distinct.append(groups)
    return distinct
