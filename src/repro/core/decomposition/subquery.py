"""Subqueries: the unit LADE produces and SAPE executes.

A subquery is a group of triple patterns that every relevant endpoint can
answer *locally and completely* (that is what the locality checks
guarantee), plus the filters pushed into it.  Subqueries are sent to each
of their relevant endpoints as self-contained SPARQL SELECT queries; the
mediator joins their results on the global join variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.rdf.terms import Term, Variable
from repro.rdf.triple import TriplePattern
from repro.sparql.ast import (
    BGP,
    Expression,
    Filter,
    GroupPattern,
    PatternNode,
    SelectQuery,
    ValuesPattern,
)


@dataclass
class Subquery:
    """One locality-safe group of triple patterns."""

    id: int
    patterns: tuple[TriplePattern, ...]
    sources: tuple[str, ...]
    filters: tuple[Expression, ...] = ()
    optional_group: int | None = None  # OPTIONAL block index, None = required
    delayed: bool = False
    estimated_cardinality: float = 0.0

    def variables(self) -> set[Variable]:
        found: set[Variable] = set()
        for pattern in self.patterns:
            found |= pattern.variables()
        return found

    def projection(self, needed: set[Variable]) -> tuple[Variable, ...]:
        """Variables this subquery must ship: its vars ∩ needed."""
        own = self.variables()
        return tuple(sorted(own & needed, key=lambda v: v.name))

    def to_select(
        self,
        projection: Sequence[Variable],
        values: ValuesPattern | None = None,
    ) -> SelectQuery:
        """Build the SELECT query sent to each relevant endpoint.

        ``values`` carries a block of found bindings when the subquery is
        evaluated as a delayed bound join (SAPE, Alg 3 line 12).
        """
        elements: list[PatternNode] = []
        if values is not None:
            elements.append(values)
        elements.append(BGP(self.patterns))
        for expression in self.filters:
            elements.append(Filter(expression))
        return SelectQuery(
            where=GroupPattern(elements),
            select_vars=tuple(projection) if projection else None,
        )

    def __repr__(self) -> str:
        tag = "optional" if self.optional_group is not None else "required"
        return (
            f"Subquery(id={self.id}, patterns={len(self.patterns)}, "
            f"sources={list(self.sources)}, {tag}, delayed={self.delayed})"
        )


@dataclass
class DecompositionPlan:
    """The output of LADE for one conjunctive branch."""

    subqueries: list[Subquery]
    global_join_variables: dict[Variable, set[frozenset[TriplePattern]]]
    residue_filters: tuple[Expression, ...] = ()
    #: Filters of an OPTIONAL block spanning several of its subqueries;
    #: applied to the block's joined relation before the left join.
    optional_residue: dict[int, tuple[Expression, ...]] = field(default_factory=dict)
    disjoint: bool = False
    check_query_count: int = 0

    def gjv_names(self) -> list[str]:
        return sorted(variable.name for variable in self.global_join_variables)

    def required_subqueries(self) -> list[Subquery]:
        return [sq for sq in self.subqueries if sq.optional_group is None]

    def optional_groups(self) -> dict[int, list[Subquery]]:
        groups: dict[int, list[Subquery]] = {}
        for sq in self.subqueries:
            if sq.optional_group is not None:
                groups.setdefault(sq.optional_group, []).append(sq)
        return groups


def values_block(
    variables: Sequence[Variable], rows: Sequence[tuple[Term | None, ...]]
) -> ValuesPattern:
    """A VALUES pattern carrying one block of found bindings."""
    return ValuesPattern(tuple(variables), rows)
