"""The Lusail engine: LADE decomposition + SAPE execution.

This is the paper's system (Fig 4) end to end:

1. **Source selection** — one cached ASK per triple pattern per endpoint.
2. **Query analysis (LADE)** — detect global join variables with locality
   check queries (Alg 1), decompose each conjunctive branch into
   locality-safe subqueries (Alg 2), push filters, and collect COUNT
   statistics for the cost model.
3. **Query execution (SAPE)** — delay large subqueries (``mu + sigma``
   threshold after Chauvenet rejection), evaluate eager subqueries
   concurrently, bound-join the delayed ones block-wise, and join results
   with the DP join-order optimizer (Alg 3).

Configuration flags expose the paper's ablations: decomposition mode,
delay policy, Chauvenet on/off, DP vs greedy join ordering, source
refinement, and caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.decomposition.decomposer import decompose, enumerate_decompositions
from repro.core.decomposition.gjv import GJVResult, detect_gjvs
from repro.core.decomposition.subquery import DecompositionPlan, Subquery
from repro.core.execution.cost_model import (
    DelayPolicy,
    collect_statistics,
    decide_delays,
)
from repro.core.execution.partial import (
    PartialBranchScheduler,
    StrategyDecision,
    choose_strategy,
)
from repro.core.execution.scheduler import (
    BranchScheduler,
    SchedulerConfig,
    adaptive_block_size,
)
from repro.endpoint.cache import EngineCaches
from repro.endpoint.client import FederationClient
from repro.endpoint.federation import Federation
from repro.net.simulator import MediatorCostModel, NetworkConfig
from repro.planning.base_engine import DEFAULT_TIMEOUT_MS, FederatedEngine
from repro.planning.normalize import Branch, NormalizedQuery, partition_filters
from repro.planning.source_selection import SourceSelection, select_sources
from repro.rdf.terms import Variable
from repro.rdf.triple import TriplePattern
from repro.relational.relation import Relation
from repro.sparql.ast import VarExpr


@dataclass
class LusailConfig:
    """Engine knobs; defaults match the paper's chosen settings."""

    #: "lade" = locality-aware (the contribution); "exclusive" = schema-only
    #: exclusive groups (ablation baseline); "triple" = one subquery per
    #: triple pattern (the naive strategy of Sec II).
    decomposition: str = "lade"
    delay_policy: DelayPolicy = DelayPolicy.MU_SIGMA
    use_chauvenet: bool = True
    enable_delay: bool = True
    block_size: int = 500
    #: Adaptive bound-join blocks: each delayed subquery's block shrinks
    #: with its COUNT-estimated rows-per-binding, never below min_block.
    min_block: int = 50
    adaptive_block_size: bool = True
    pool_size: int = 8
    refine_sources: bool = True
    greedy_join_order: bool = False
    max_mediator_rows: int | None = 2_000_000
    #: Compile-time decomposition choice (the paper's stated future
    #: work): enumerate the decompositions reachable by different GJV
    #: traversal orders and pick the one with the smallest estimated
    #: intermediate results.
    optimize_decomposition: bool = False
    #: Multi-machine execution (paper Sec V, supported feature): the
    #: mediator's worker pool and join parallelism scale with the number
    #: of machines hosting it.
    machines: int = 1
    #: Degradation under faults (see docs/resilience.md): drop an
    #: irrecoverable endpoint's contribution instead of failing the
    #: query, reporting completeness metadata.
    partial_results: bool = False
    #: Planner statistics source: "charsets" answers ASK / COUNT / check
    #: questions from per-endpoint characteristic-set summaries when
    #: provable (remote probes as fallback); "probe" is the pure
    #: per-query probe path the paper describes.
    statistics: str = "charsets"
    #: Execution strategy for required subqueries: "bound-join" is the
    #: paper's SAPE ladder, "partial" ships the whole branch to every
    #: endpoint in one round and assembles partial matches at the
    #: mediator (:mod:`repro.core.execution.partial`), and "auto" picks
    #: per branch from the charset-statistics cost estimates.
    strategy: str = "bound-join"

    def scheduler_config(self) -> SchedulerConfig:
        return SchedulerConfig(
            block_size=self.block_size,
            min_block=self.min_block,
            adaptive_block_size=self.adaptive_block_size,
            refine_sources=self.refine_sources,
            greedy_join_order=self.greedy_join_order,
            max_mediator_rows=self.max_mediator_rows,
            pool_size=self.pool_size * max(1, self.machines),
            partial_results=self.partial_results,
        )


@dataclass
class QueryPlanInfo:
    """Per-query plan details exposed for inspection and experiments."""

    branch_plans: list[DecompositionPlan] = field(default_factory=list)
    gjv_names: list[str] = field(default_factory=list)
    subquery_count: int = 0
    delayed_count: int = 0
    check_queries: int = 0


class LusailEngine(FederatedEngine):
    """Lusail: locality-aware decomposition + selectivity-aware execution."""

    name = "Lusail"

    def __init__(
        self,
        federation: Federation,
        config: LusailConfig | None = None,
        network_config: NetworkConfig | None = None,
        caches: EngineCaches | None = None,
        timeout_ms: float | None = DEFAULT_TIMEOUT_MS,
        mediator: MediatorCostModel | None = None,
    ):
        super().__init__(federation, network_config, caches, timeout_ms)
        self.config = config or LusailConfig()
        self.statistics = self.config.statistics
        machines = max(1, self.config.machines)
        if machines > 1:
            # Each extra machine contributes its own request workers.
            self.network_config = replace(
                self.network_config,
                mediator_slots=self.network_config.mediator_slots * machines,
            )
        self.mediator = mediator or MediatorCostModel(
            threads=self.config.pool_size * machines
        )
        self.last_plan: QueryPlanInfo | None = None
        #: Scheduler class; the multi-query optimizer swaps in a sharing
        #: variant (see :mod:`repro.core.mqo`).
        self.scheduler_class: type[BranchScheduler] = BranchScheduler

    # ------------------------------------------------------------ pipeline

    def _execute_normalized(
        self, client: FederationClient, normalized: NormalizedQuery
    ) -> tuple[Relation, float]:
        plan_info = QueryPlanInfo()
        self.last_plan = plan_info

        union_relation: Relation | None = None
        end_ms = 0.0
        phase_maxima: dict[str, float] = {}
        # Branch schedulers install their own kernel runtime; this outer
        # one covers the cross-branch UNIONs with the same row limit.
        with self._mediator_runtime(client, self.config.max_mediator_rows):
            for branch in normalized.branches:
                relation, branch_end, phases = self._execute_branch(
                    client, branch, normalized, plan_info
                )
                end_ms = max(end_ms, branch_end)
                for phase, duration in phases.items():
                    phase_maxima[phase] = max(phase_maxima.get(phase, 0.0), duration)
                union_relation = relation if union_relation is None else union_relation.union(relation)
        assert union_relation is not None  # normalize() guarantees >= 1 branch
        # Branches execute concurrently: the phase profile is the maximum
        # across branches, not the sum.
        client.metrics.phase_ms = dict(phase_maxima)
        return union_relation, end_ms

    def _execute_branch(
        self,
        client: FederationClient,
        branch: Branch,
        normalized: NormalizedQuery,
        plan_info: QueryPlanInfo,
    ) -> tuple[Relation, float, dict[str, float]]:
        now = 0.0
        phases: dict[str, float] = {}
        tracer = client.tracer

        with tracer.span("branch", t0=0.0) as branch_span:
            # ---- Phase 1: source selection ----------------------------
            all_patterns = list(branch.all_patterns())
            mark = client.metrics.mark()
            with tracer.span("source_selection", t0=0.0) as span:
                selection, now = select_sources(client, all_patterns, now)
                span.set(
                    patterns=len(all_patterns),
                    requests=client.metrics.requests_since(mark),
                ).end(now)
            phases["source_selection"] = now

            missing_required = [
                pattern for pattern in branch.patterns if not selection.relevant(pattern)
            ]
            if missing_required:
                # Some required pattern has no source anywhere: empty answer.
                branch_span.set(empty="no source for required pattern").end(now)
                return Relation(tuple(normalized.projected_variables())), now, phases

            # ---- Phase 2: analysis (LADE + statistics) -----------------
            analysis_start = now
            with tracer.span("analysis", t0=now) as analysis_span:
                with tracer.span("decomposition", t0=now) as span:
                    plan, now = self._decompose_branch(client, branch, selection, now)
                    span.set(
                        subqueries=len(plan.subqueries),
                        gjvs=plan.gjv_names(),
                        check_queries=plan.check_query_count,
                    ).end(now)
                plan_info.branch_plans.append(plan)
                plan_info.gjv_names = sorted(set(plan_info.gjv_names) | set(plan.gjv_names()))
                plan_info.subquery_count += len(plan.subqueries)
                plan_info.check_queries += plan.check_query_count

                needed_vars = self._needed_variables(plan, normalized)

                estimates, now = collect_statistics(client, plan.subqueries, now)
                with tracer.span("delay_decision", t0=now) as span:
                    if self.config.enable_delay:
                        decision = decide_delays(
                            plan.subqueries,
                            estimates,
                            projected=needed_vars,
                            policy=self.config.delay_policy,
                            use_chauvenet=self.config.use_chauvenet,
                        )
                        span.set(
                            policy=str(self.config.delay_policy.value),
                            cardinality_threshold=decision.cardinality_threshold,
                            endpoint_threshold=decision.endpoint_threshold,
                            delayed=sorted(decision.delayed_ids),
                            chauvenet_rejected=sorted(decision.cardinality_rejected_ids),
                            estimated_cardinalities=decision.cardinalities,
                        )
                    else:
                        for subquery in plan.subqueries:
                            subquery.estimated_cardinality = estimates.subquery_cardinality(
                                subquery, needed_vars
                            )
                            subquery.delayed = False
                        span.set(policy="disabled", delayed=[])
                    span.end(now)
                analysis_span.end(now)
            delayed_count = sum(1 for sq in plan.subqueries if sq.delayed)
            plan_info.delayed_count += delayed_count
            client.registry.inc("subqueries_total", len(plan.subqueries), engine=self.name)
            client.registry.inc("delayed_subqueries_total", delayed_count, engine=self.name)
            client.registry.inc(
                "check_queries_total", plan.check_query_count, engine=self.name
            )
            phases["analysis"] = now - analysis_start

            # ---- Phase 3: execution (SAPE or partial evaluation) -------
            execution_start = now
            scheduler_class, decision = self._resolve_strategy(
                plan, needed_vars, estimates, client
            )
            with tracer.span(
                "execution", t0=now, strategy=decision.strategy
            ) as span:
                scheduler = scheduler_class(
                    client=client,
                    plan=plan,
                    needed_vars=needed_vars,
                    estimates=estimates,
                    mediator=self.mediator,
                    config=self.config.scheduler_config(),
                )
                outcome = scheduler.run(now)
                now = outcome.end_ms + self.mediator.row_ms * outcome.join_cost_units
                if client.audit.enabled:
                    # The picker's crossing-selectivity estimate against
                    # the digest-pruning survival the partial round
                    # actually measured (echoed for bound-join runs,
                    # where nothing measures it).  Recorded as percent:
                    # the q-error histogram clamps values below 1.
                    actual = (
                        scheduler.actual_crossing_selectivity()
                        if isinstance(scheduler, PartialBranchScheduler)
                        else decision.estimated_crossing_selectivity
                    )
                    client.audit.record(
                        "strategy",
                        100.0 * decision.estimated_crossing_selectivity,
                        100.0 * actual,
                        span=span,
                        strategy=decision.strategy,
                        reason=decision.reason,
                        est_partial_rows=round(decision.est_partial_rows, 1),
                        est_bound_rows=round(decision.est_bound_rows, 1),
                    )
                if client.audit.enabled and plan.subqueries:
                    # SAPE treats max C(sq) as the bound on what the
                    # branch can produce; audit it against the branch's
                    # actual result size.
                    client.audit.record(
                        "branch_rows",
                        max(sq.estimated_cardinality for sq in plan.subqueries),
                        len(outcome.relation),
                        span=span,
                    )
                counters = scheduler.kernel_counters
                span.set(
                    rows=len(outcome.relation),
                    join_cost_units=outcome.join_cost_units,
                    kernel_fast=counters.fast_dispatches,
                    kernel_general=counters.general_dispatches,
                    kernel_rows_emitted=counters.rows_emitted,
                ).end(now)
            phases["execution"] = now - execution_start
            client.metrics.mediator_rows = max(
                client.metrics.mediator_rows, len(outcome.relation)
            )
            branch_span.set(rows=len(outcome.relation)).end(now)
        return outcome.relation, now, phases

    # ------------------------------------------------------------ strategy

    def _resolve_strategy(
        self, plan, needed_vars, estimates, client
    ) -> tuple[type[BranchScheduler], StrategyDecision]:
        """Pick the branch scheduler class for the configured strategy.

        The multi-query optimizer swaps ``scheduler_class`` for a
        sharing variant; partial evaluation cannot substitute for that,
        so any non-default scheduler always wins and the decision is
        recorded as forced.
        """
        requested = self.config.strategy
        if requested not in ("auto", "partial", "bound-join"):
            raise ValueError(f"unknown execution strategy {requested!r}")
        if self.scheduler_class is not BranchScheduler:
            decision = choose_strategy(plan, needed_vars, estimates, client)
            return self.scheduler_class, replace(
                decision,
                strategy="bound-join",
                reason="scheduler overridden (multi-query optimizer)",
            )
        decision = choose_strategy(plan, needed_vars, estimates, client)
        if requested != "auto" and requested != decision.strategy:
            decision = replace(
                decision, strategy=requested, reason="forced by configuration"
            )
        if decision.strategy == "partial":
            return PartialBranchScheduler, decision
        return BranchScheduler, decision

    # -------------------------------------------------------- decomposition

    def _decompose_branch(
        self,
        client: FederationClient,
        branch: Branch,
        selection: SourceSelection,
        now: float,
    ) -> tuple[DecompositionPlan, float]:
        mode = self.config.decomposition
        check_count = 0

        if mode == "lade":
            gjvs, now = detect_gjvs(client, list(branch.patterns), selection, now)
            check_count += gjvs.check_queries_run
            if self.config.optimize_decomposition and gjvs.variables:
                required_groups, now = self._choose_decomposition(
                    client, list(branch.patterns), gjvs, selection, now
                )
            else:
                required_groups = decompose(list(branch.patterns), gjvs, selection)
        elif mode == "exclusive":
            gjvs = GJVResult()
            required_groups = _exclusive_groups(list(branch.patterns), selection)
        elif mode == "triple":
            gjvs = GJVResult()
            required_groups = [[pattern] for pattern in branch.patterns]
        else:
            raise ValueError(f"unknown decomposition mode {mode!r}")

        # OPTIONAL blocks are decomposed independently, under the same
        # locality rules, and tagged with their group index.
        optional_plans: list[tuple[int, list[list[TriplePattern]]]] = []
        for index, block in enumerate(branch.optionals):
            if any(not selection.relevant(pattern) for pattern in block.patterns):
                # The block can never match anywhere: OPTIONAL contributes
                # nothing and the base rows pass through unextended.
                continue
            block_patterns = list(block.patterns)
            if mode == "lade":
                block_gjvs, now = detect_gjvs(client, block_patterns, selection, now)
                check_count += block_gjvs.check_queries_run
                groups = decompose(block_patterns, block_gjvs, selection)
            elif mode == "exclusive":
                groups = _exclusive_groups(block_patterns, selection)
            else:
                groups = [[pattern] for pattern in block_patterns]
            optional_plans.append((index, groups))

        # Push filters: each filter goes to the first group covering all
        # its variables; leftovers run at the mediator.
        group_var_sets = [
            {variable for pattern in group for variable in pattern.variables()}
            for group in required_groups
        ]
        pushed, residue = partition_filters(branch.filters, group_var_sets)

        subqueries: list[Subquery] = []
        next_id = 0
        for group, filters in zip(required_groups, pushed):
            subqueries.append(
                Subquery(
                    id=next_id,
                    patterns=tuple(group),
                    sources=_group_sources(group, selection),
                    filters=tuple(filters),
                )
            )
            next_id += 1

        optional_residue: dict[int, tuple] = {}
        for block_index, groups in optional_plans:
            block = branch.optionals[block_index]
            block_var_sets = [
                {variable for pattern in group for variable in pattern.variables()}
                for group in groups
            ]
            block_pushed, block_residue = partition_filters(block.filters, block_var_sets)
            if block_residue:
                optional_residue[block_index] = tuple(block_residue)
            for group, filters in zip(groups, block_pushed):
                subqueries.append(
                    Subquery(
                        id=next_id,
                        patterns=tuple(group),
                        sources=_group_sources(group, selection),
                        filters=tuple(filters),
                        optional_group=block_index,
                    )
                )
                next_id += 1

        disjoint = (
            len(subqueries) == 1
            and subqueries[0].optional_group is None
            and not residue
        )
        plan = DecompositionPlan(
            subqueries=subqueries,
            global_join_variables=dict(gjvs.variables),
            residue_filters=tuple(residue),
            optional_residue=optional_residue,
            disjoint=disjoint,
            check_query_count=check_count,
        )
        return plan, now

    def _choose_decomposition(
        self,
        client: FederationClient,
        patterns: list[TriplePattern],
        gjvs,
        selection: SourceSelection,
        now: float,
    ) -> tuple[list[list[TriplePattern]], float]:
        """Pick the decomposition with the smallest estimated
        intermediate results (the paper's Sec IV-C future work).

        Candidates come from permuting the GJV traversal order; each is
        scored with the SAPE cardinality rule over per-pattern COUNT
        statistics (collected once, cached).
        """
        candidates = enumerate_decompositions(patterns, gjvs, selection)
        if len(candidates) == 1:
            return candidates[0], now
        probes = [
            Subquery(id=index, patterns=(pattern,), sources=selection.relevant(pattern))
            for index, pattern in enumerate(patterns)
        ]
        estimates, now = collect_statistics(client, probes, now)

        def score(groups: list[list[TriplePattern]]) -> tuple[float, int]:
            total = 0.0
            for index, group in enumerate(groups):
                subquery = Subquery(
                    id=index,
                    patterns=tuple(group),
                    sources=_group_sources(group, selection),
                )
                total += estimates.subquery_cardinality(subquery, set())
            return (total, len(groups))

        best = min(candidates, key=score)
        return best, now

    # ------------------------------------------------------------- helpers

    def _needed_variables(
        self, plan: DecompositionPlan, normalized: NormalizedQuery
    ) -> set[Variable]:
        """Variables subqueries must project: final projection, join
        variables shared across subqueries, residue-filter and ORDER BY
        variables."""
        needed: set[Variable] = set(normalized.projected_variables())
        for expression in plan.residue_filters:
            needed |= expression.variables()
        for filters in plan.optional_residue.values():
            for expression in filters:
                needed |= expression.variables()
        for condition in normalized.order_by:
            if isinstance(condition.expression, VarExpr):
                needed.add(condition.expression.variable)
        seen: dict[Variable, int] = {}
        for subquery in plan.subqueries:
            for variable in subquery.variables():
                seen[variable] = seen.get(variable, 0) + 1
        needed |= {variable for variable, count in seen.items() if count >= 2}
        return needed

    def _explain_block_size(self, subquery, plan, decision) -> str:
        """Planned bound-join block size line for one delayed subquery.

        At compile time the binding count is unknown; it is approximated
        by the smallest estimated cardinality among the eager subqueries
        sharing a variable — the component the bindings will come from.
        """
        if not self.config.adaptive_block_size:
            return f"bound-join block size: {self.config.block_size} (fixed)"
        cardinality = decision.cardinalities.get(
            subquery.id, subquery.estimated_cardinality
        )
        shared_cards = [
            decision.cardinalities.get(other.id, other.estimated_cardinality)
            for other in plan.subqueries
            if not other.delayed
            and other.optional_group is None
            and other.variables() & subquery.variables()
        ]
        if not shared_cards:
            return (
                f"bound-join block size: {self.config.block_size} "
                "(adaptive, no connected eager bindings estimate)"
            )
        bindings = max(1, int(min(shared_cards)))
        planned = adaptive_block_size(
            self.config.block_size, self.config.min_block, cardinality, bindings
        )
        return (
            f"bound-join block size: {planned} "
            f"(adaptive, est. {cardinality / bindings:.1f} rows/binding, "
            f"clamp [{min(self.config.min_block, self.config.block_size)}, "
            f"{self.config.block_size}])"
        )

    def explain(self, query) -> str:
        """Compile-time plan report: sources, GJVs, subqueries, delays.

        Runs source selection and the full LADE/SAPE analysis (issuing
        the same probe requests an execution would, and warming the same
        caches) but stops before any subquery is evaluated.
        """
        from repro.planning.normalize import normalize
        from repro.sparql.parser import parse_query as _parse

        if isinstance(query, str):
            query = _parse(query)
        normalized = normalize(query)
        client = self.build_client()
        lines: list[str] = []
        for branch_index, branch in enumerate(normalized.branches):
            lines.append(f"branch {branch_index}:")
            selection, now = select_sources(client, list(branch.all_patterns()), 0.0)
            plan, now = self._decompose_branch(client, branch, selection, now)
            needed = self._needed_variables(plan, normalized)
            estimates, now = collect_statistics(client, plan.subqueries, now)
            decision = decide_delays(
                plan.subqueries,
                estimates,
                projected=needed,
                policy=self.config.delay_policy,
                use_chauvenet=self.config.use_chauvenet,
            )
            lines.append(f"  global join variables: {plan.gjv_names() or '(none)'}")
            lines.append(f"  check queries run: {plan.check_query_count}")
            __, strategy_decision = self._resolve_strategy(
                plan, needed, estimates, client
            )
            lines.append(
                f"  strategy [{self.config.strategy}]: "
                f"{strategy_decision.strategy} ({strategy_decision.reason}; "
                f"est. crossing selectivity "
                f"{strategy_decision.estimated_crossing_selectivity:.2f})"
            )
            lines.append(
                f"  delay decision [{self.config.delay_policy.value}]: "
                f"cardinality threshold={decision.cardinality_threshold:.1f}, "
                f"endpoint threshold={decision.endpoint_threshold:.1f}"
            )
            rejected = sorted(
                decision.cardinality_rejected_ids | decision.endpoint_rejected_ids
            )
            lines.append(
                "  chauvenet rejected: "
                + (f"subqueries {rejected}" if rejected else "(none)")
            )
            if plan.disjoint:
                lines.append("  disjoint: whole branch evaluated per endpoint")
            for subquery in plan.subqueries:
                tag = "OPTIONAL " if subquery.optional_group is not None else ""
                delay = "delayed" if subquery.delayed else "eager"
                cardinality = decision.cardinalities.get(
                    subquery.id, subquery.estimated_cardinality
                )
                comparison = ">=" if cardinality >= decision.cardinality_threshold else "<"
                lines.append(
                    f"  {tag}subquery {subquery.id} [{delay}, "
                    f"est.card={cardinality:.0f} {comparison} "
                    f"threshold {decision.cardinality_threshold:.1f}, "
                    f"endpoints={decision.endpoint_counts.get(subquery.id, len(subquery.sources))}"
                    f"{', chauvenet-rejected' if subquery.id in rejected else ''}] "
                    f"sources={list(subquery.sources)}"
                )
                if subquery.delayed:
                    lines.append(
                        "    " + self._explain_block_size(subquery, plan, decision)
                    )
                for pattern in subquery.patterns:
                    lines.append(f"    {pattern.n3()}")
                for expression in subquery.filters:
                    from repro.sparql.serializer import serialize_expression

                    lines.append(f"    FILTER {serialize_expression(expression)}")
            if plan.residue_filters:
                from repro.sparql.serializer import serialize_expression

                for expression in plan.residue_filters:
                    lines.append(f"  mediator FILTER {serialize_expression(expression)}")
        return "\n".join(lines)

    def with_config(self, **overrides) -> "LusailEngine":
        """A copy of this engine with config overrides (fresh caches)."""
        return LusailEngine(
            federation=self.federation,
            config=replace(self.config, **overrides),
            network_config=self.network_config,
            timeout_ms=self.timeout_ms,
            mediator=self.mediator,
        )


def _group_sources(group: list[TriplePattern], selection: SourceSelection) -> tuple[str, ...]:
    """Relevant endpoints for a subquery.

    LADE groups guarantee identical per-pattern source lists; for the
    disjoint whole-branch case the intersection is the set of endpoints
    able to answer every pattern.
    """
    sources = set(selection.relevant(group[0]))
    for pattern in group[1:]:
        sources &= set(selection.relevant(pattern))
    # Preserve the deterministic order of the first pattern's list.
    return tuple(name for name in selection.relevant(group[0]) if name in sources)


def _exclusive_groups(
    patterns: list[TriplePattern], selection: SourceSelection
) -> list[list[TriplePattern]]:
    """FedX-style schema-only grouping (used for the LADE ablation).

    Patterns answerable by exactly one and the same endpoint form an
    exclusive group; every other pattern is its own subquery.
    """
    groups: dict[tuple[str, ...], list[TriplePattern]] = {}
    singletons: list[list[TriplePattern]] = []
    for pattern in patterns:
        sources = selection.relevant(pattern)
        if len(sources) == 1:
            groups.setdefault(sources, []).append(pattern)
        else:
            singletons.append([pattern])
    return list(groups.values()) + singletons
