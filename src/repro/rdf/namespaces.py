"""Namespace helpers and the vocabularies used throughout the reproduction.

A :class:`Namespace` builds IRIs by attribute access or indexing::

    UB = Namespace("http://swat.cse.lehigh.edu/onto/univ-bench.owl#")
    UB.advisor            # IRI('...univ-bench.owl#advisor')
    UB["takesCourse"]     # same thing, for names that are not identifiers

A :class:`PrefixMap` resolves ``prefix:local`` names in parsed SPARQL and
renders compact names in output.
"""

from __future__ import annotations

from repro.exceptions import ParseError
from repro.rdf.terms import IRI


class Namespace:
    """A base IRI from which member IRIs are minted."""

    def __init__(self, base: str):
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return IRI(self._base + name)

    def __getitem__(self, name: str) -> IRI:
        return IRI(self._base + name)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"


#: Core W3C vocabularies.
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")

#: LUBM's univ-bench ontology (the paper's running example).
UB = Namespace("http://swat.cse.lehigh.edu/onto/univ-bench.owl#")

#: Commonly used single terms.
RDF_TYPE = RDF.type
OWL_SAMEAS = OWL.sameAs
RDFS_LABEL = RDFS.label
RDFS_SEEALSO = RDFS.seeAlso

#: Default prefixes understood by the parser without declaration, matching
#: what benchmark queries assume.
DEFAULT_PREFIXES = {
    "rdf": RDF.base,
    "rdfs": RDFS.base,
    "owl": OWL.base,
    "xsd": XSD.base,
    "foaf": FOAF.base,
    "ub": UB.base,
}


class PrefixMap:
    """Bidirectional prefix <-> namespace mapping for parsing and rendering."""

    def __init__(self, prefixes: dict[str, str] | None = None):
        self._by_prefix: dict[str, str] = dict(DEFAULT_PREFIXES)
        if prefixes:
            self._by_prefix.update(prefixes)

    def bind(self, prefix: str, base: str) -> None:
        """Register (or overwrite) a prefix."""
        self._by_prefix[prefix] = base

    def expand(self, prefixed_name: str) -> IRI:
        """Resolve ``prefix:local`` into an IRI; raises ParseError if unknown."""
        prefix, sep, local = prefixed_name.partition(":")
        if not sep:
            raise ParseError(f"not a prefixed name: {prefixed_name!r}")
        base = self._by_prefix.get(prefix)
        if base is None:
            raise ParseError(f"unknown prefix {prefix!r} in {prefixed_name!r}")
        return IRI(base + local)

    def shrink(self, iri: IRI) -> str:
        """Render an IRI compactly using the longest matching prefix."""
        best_prefix = None
        best_base = ""
        for prefix, base in self._by_prefix.items():
            if iri.value.startswith(base) and len(base) > len(best_base):
                best_prefix, best_base = prefix, base
        if best_prefix is None:
            return iri.n3()
        local = iri.value[len(best_base):]
        if not local or any(ch in local for ch in "/#?"):
            return iri.n3()
        return f"{best_prefix}:{local}"

    def items(self):
        return self._by_prefix.items()

    def copy(self) -> "PrefixMap":
        clone = PrefixMap()
        clone._by_prefix = dict(self._by_prefix)
        return clone
