"""RDF term model: IRIs, literals, blank nodes, and query variables.

Terms are immutable, hashable value objects.  They form the vocabulary for
everything above this layer: the triple store indexes them, the SPARQL
engine binds them to variables, and the federation layer ships them between
endpoints.

The design favours plain ``__slots__`` classes over dataclasses so that
tight loops in the store and evaluator pay minimal attribute overhead.
Hashes are computed once at construction and cached in a ``_hash`` slot:
terms are dictionary keys everywhere (store indexes, solution mappings,
probe caches), and re-hashing a ``(class, str)`` tuple per lookup used to
dominate those paths.
"""

from __future__ import annotations

from typing import Union

from repro.exceptions import TermError

#: Datatype IRIs used by typed literals.
XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"
XSD_DECIMAL = "http://www.w3.org/2001/XMLSchema#decimal"
XSD_DOUBLE = "http://www.w3.org/2001/XMLSchema#double"
XSD_BOOLEAN = "http://www.w3.org/2001/XMLSchema#boolean"
XSD_DATE = "http://www.w3.org/2001/XMLSchema#date"

_NUMERIC_DATATYPES = frozenset({XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE})


class Term:
    """Abstract base for concrete RDF terms (IRI, Literal, BNode)."""

    __slots__ = ()

    def n3(self) -> str:
        """Render the term in N-Triples / SPARQL surface syntax."""
        raise NotImplementedError

    def sort_key(self) -> tuple:
        """Total order across term kinds, used by ORDER BY and tests."""
        raise NotImplementedError


class IRI(Term):
    """An IRI reference, e.g. ``<http://example.org/u0/prof1>``."""

    __slots__ = ("value", "_hash")

    def __init__(self, value: str):
        if not value:
            raise TermError("IRI value must be a non-empty string")
        self.value = value
        self._hash = hash((IRI, value))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IRI) and self.value == other.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"IRI({self.value!r})"

    def n3(self) -> str:
        return f"<{self.value}>"

    def sort_key(self) -> tuple:
        return (1, self.value)

    @property
    def authority(self) -> str:
        """The scheme+host prefix of the IRI.

        HiBISCuS-style source pruning groups IRIs by authority: two IRIs can
        only be equal if their authorities match, so join candidates can be
        pruned using per-endpoint authority summaries.
        """
        value = self.value
        scheme_end = value.find("://")
        if scheme_end < 0:
            # URNs and the like: authority is the part before the last ':'.
            head, sep, __ = value.rpartition(":")
            return head if sep else value
        path_start = value.find("/", scheme_end + 3)
        return value if path_start < 0 else value[:path_start]

    @property
    def local_name(self) -> str:
        """The fragment or final path segment, for human-readable output."""
        value = self.value
        for separator in ("#", "/"):
            head, sep, tail = value.rpartition(separator)
            if sep and tail:
                return tail
        return value


class Literal(Term):
    """An RDF literal with optional datatype or language tag."""

    __slots__ = ("value", "datatype", "language", "_hash")

    def __init__(self, value: str, datatype: str | None = None, language: str | None = None):
        if datatype is not None and language is not None:
            raise TermError("a literal cannot have both a datatype and a language tag")
        self.value = str(value)
        self.datatype = datatype
        self.language = language
        self._hash = hash((Literal, self.value, datatype, language))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and self.value == other.value
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Literal({self.value!r}, datatype={self.datatype!r}, language={self.language!r})"

    def n3(self) -> str:
        escaped = (
            self.value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        # Remaining control characters must use \uXXXX escapes.
        if any(ord(ch) < 0x20 for ch in escaped):
            escaped = "".join(
                f"\\u{ord(ch):04X}" if ord(ch) < 0x20 else ch for ch in escaped
            )
        rendered = f'"{escaped}"'
        if self.language:
            return f"{rendered}@{self.language}"
        if self.datatype and self.datatype != XSD_STRING:
            return f"{rendered}^^<{self.datatype}>"
        return rendered

    def sort_key(self) -> tuple:
        numeric = self.numeric_value()
        if numeric is not None:
            return (2, 0, numeric, self.value)
        return (2, 1, self.value, self.language or "")

    def is_numeric(self) -> bool:
        return self.datatype in _NUMERIC_DATATYPES

    def numeric_value(self) -> Union[int, float, None]:
        """The numeric interpretation of the literal, or None.

        Plain literals that look like numbers are treated as numeric, which
        matches how SPARQL engines compare terms coming from untyped data.
        """
        if self.language is not None:
            return None
        if self.datatype is not None and self.datatype not in _NUMERIC_DATATYPES:
            return None
        text = self.value.strip()
        try:
            if self.datatype == XSD_INTEGER:
                return int(text)
            if any(ch in text for ch in ".eE") and text not in ("", ".", "-"):
                return float(text)
            return int(text)
        except ValueError:
            try:
                return float(text)
            except ValueError:
                return None


class BNode(Term):
    """A blank node with a store-local label."""

    __slots__ = ("label", "_hash")

    def __init__(self, label: str):
        if not label:
            raise TermError("blank node label must be non-empty")
        self.label = label
        self._hash = hash((BNode, label))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BNode) and self.label == other.label

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"BNode({self.label!r})"

    def n3(self) -> str:
        return f"_:{self.label}"

    def sort_key(self) -> tuple:
        return (0, self.label)


class Variable:
    """A SPARQL query variable, e.g. ``?S``.

    Variables are *not* :class:`Term` subclasses: they can appear in triple
    patterns but never in data, and several code paths rely on
    ``isinstance(x, Term)`` meaning "concrete value".

    Instances are interned by name: ``Variable("x") is Variable("x")``.
    Solution dictionaries throughout the evaluator and mediator are keyed
    on variables, and interning lets every dict lookup hit CPython's
    pointer-identity fast path instead of calling ``__eq__``.
    """

    __slots__ = ("name", "_hash")

    _interned: dict[str, "Variable"] = {}

    def __new__(cls, name: str):
        interned = cls._interned.get(name)
        if interned is not None:
            return interned
        if not name or name.startswith(("?", "$")):
            raise TermError(f"variable name must be bare (no ?/$ prefix): {name!r}")
        self = super().__new__(cls)
        self.name = name
        self._hash = hash((Variable, name))
        cls._interned[name] = self
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Re-enter __new__ on unpickle so deserialized variables are
        # interned like every other instance (fork-pool workers receive
        # queries by pickle; the default slots protocol bypasses
        # __new__ and would crash on the missing ``name`` argument).
        return (Variable, (self.name,))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def n3(self) -> str:
        return f"?{self.name}"


#: Anything allowed in a triple-pattern position.
PatternTerm = Union[Term, Variable]


def is_concrete(term: PatternTerm) -> bool:
    """True if ``term`` is a data term rather than a variable."""
    return isinstance(term, Term)


def typed_literal(value: Union[int, float, bool, str]) -> Literal:
    """Build a literal with the natural XSD datatype for a Python value."""
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD_BOOLEAN)
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    if isinstance(value, float):
        return Literal(repr(value), datatype=XSD_DOUBLE)
    return Literal(str(value))


def effective_boolean_value(term: object) -> bool:
    """SPARQL effective boolean value (EBV) of a term.

    Unbound values (None) are an error in real SPARQL; here they are falsy,
    which composes better with FILTER over OPTIONAL results.
    """
    if term is None:
        return False
    if isinstance(term, bool):
        return term
    if isinstance(term, Literal):
        if term.datatype == XSD_BOOLEAN:
            return term.value == "true"
        numeric = term.numeric_value()
        if numeric is not None:
            return numeric != 0
        return bool(term.value)
    return True
