"""A small, strict N-Triples reader and writer.

Used to round-trip generated benchmark data to disk and to load fixture
graphs in tests.  Supports IRIs, blank nodes, plain / language-tagged /
typed literals, comments, and blank lines.
"""

from __future__ import annotations

from typing import Iterable, Iterator, TextIO

from repro.exceptions import ParseError
from repro.rdf.terms import BNode, IRI, Literal, Term
from repro.rdf.triple import Triple

_ESCAPES = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    '"': '"',
    "\\": "\\",
}


class _LineScanner:
    """Character scanner over a single N-Triples line."""

    def __init__(self, text: str, line_number: int):
        self.text = text
        self.pos = 0
        self.line_number = line_number

    def error(self, message: str) -> ParseError:
        return ParseError(message, line=self.line_number, column=self.pos + 1)

    def skip_whitespace(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}, found {self.peek()!r}")
        self.pos += 1

    def read_until(self, terminator: str) -> str:
        end = self.text.find(terminator, self.pos)
        if end < 0:
            raise self.error(f"unterminated token, expected {terminator!r}")
        value = self.text[self.pos:end]
        self.pos = end + 1
        return value

    def read_iri(self) -> IRI:
        self.expect("<")
        return IRI(self.read_until(">"))

    def read_bnode(self) -> BNode:
        self.expect("_")
        self.expect(":")
        start = self.pos
        while self.pos < len(self.text) and (self.text[self.pos].isalnum() or self.text[self.pos] in "-_"):
            self.pos += 1
        if self.pos == start:
            raise self.error("empty blank node label")
        return BNode(self.text[start:self.pos])

    def read_quoted_string(self) -> str:
        self.expect('"')
        chunks: list[str] = []
        while True:
            if self.at_end():
                raise self.error("unterminated string literal")
            char = self.text[self.pos]
            self.pos += 1
            if char == '"':
                return "".join(chunks)
            if char != "\\":
                chunks.append(char)
                continue
            if self.at_end():
                raise self.error("dangling escape in string literal")
            escape = self.text[self.pos]
            self.pos += 1
            if escape in _ESCAPES:
                chunks.append(_ESCAPES[escape])
            elif escape == "u":
                code = self.text[self.pos:self.pos + 4]
                if len(code) != 4:
                    raise self.error("truncated \\u escape")
                chunks.append(chr(int(code, 16)))
                self.pos += 4
            elif escape == "U":
                code = self.text[self.pos:self.pos + 8]
                if len(code) != 8:
                    raise self.error("truncated \\U escape")
                chunks.append(chr(int(code, 16)))
                self.pos += 8
            else:
                raise self.error(f"unknown escape \\{escape}")

    def read_literal(self) -> Literal:
        value = self.read_quoted_string()
        if self.peek() == "@":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.text) and (self.text[self.pos].isalnum() or self.text[self.pos] == "-"):
                self.pos += 1
            if self.pos == start:
                raise self.error("empty language tag")
            return Literal(value, language=self.text[start:self.pos])
        if self.text[self.pos:self.pos + 2] == "^^":
            self.pos += 2
            datatype = self.read_iri()
            return Literal(value, datatype=datatype.value)
        return Literal(value)

    def read_term(self, allow_literal: bool) -> Term:
        self.skip_whitespace()
        lead = self.peek()
        if lead == "<":
            return self.read_iri()
        if lead == "_":
            return self.read_bnode()
        if lead == '"':
            if not allow_literal:
                raise self.error("literal not allowed in this position")
            return self.read_literal()
        raise self.error(f"unexpected character {lead!r}")


def parse_line(line: str, line_number: int = 1) -> Triple | None:
    """Parse one N-Triples line; returns None for blank/comment lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    scanner = _LineScanner(stripped, line_number)
    subject = scanner.read_term(allow_literal=False)
    predicate = scanner.read_term(allow_literal=False)
    if not isinstance(predicate, IRI):
        raise scanner.error("predicate must be an IRI")
    obj = scanner.read_term(allow_literal=True)
    scanner.skip_whitespace()
    scanner.expect(".")
    scanner.skip_whitespace()
    if not scanner.at_end():
        raise scanner.error("trailing characters after '.'")
    return Triple(subject, predicate, obj)


def parse(text: str) -> Iterator[Triple]:
    """Parse a whole N-Triples document, yielding triples.

    Lines are split on ``\\n`` only — Unicode line separators such as
    U+0085 may legitimately occur inside (escaped) literals.
    """
    for line_number, line in enumerate(text.split("\n"), start=1):
        triple = parse_line(line, line_number)
        if triple is not None:
            yield triple


def serialize(triples: Iterable[Triple]) -> str:
    """Serialize triples into an N-Triples document."""
    return "".join(triple.n3() + "\n" for triple in triples)


def dump(triples: Iterable[Triple], stream: TextIO) -> int:
    """Write triples to a text stream; returns the number written."""
    count = 0
    for triple in triples:
        stream.write(triple.n3())
        stream.write("\n")
        count += 1
    return count


def load(stream: TextIO) -> Iterator[Triple]:
    """Read triples from a text stream."""
    for line_number, line in enumerate(stream, start=1):
        triple = parse_line(line, line_number)
        if triple is not None:
            yield triple
