"""Triples and triple patterns.

A :class:`Triple` holds three concrete terms and is what the store indexes.
A :class:`TriplePattern` may hold variables in any position and is the unit
the SPARQL engine matches and the federation layer decomposes.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.exceptions import TermError
from repro.rdf.terms import PatternTerm, Term, Variable, is_concrete


class Triple:
    """A concrete RDF triple (subject, predicate, object)."""

    __slots__ = ("subject", "predicate", "object", "_hash")

    def __init__(self, subject: Term, predicate: Term, object: Term):
        if not (is_concrete(subject) and is_concrete(predicate) and is_concrete(object)):
            raise TermError("Triple positions must be concrete terms; use TriplePattern for variables")
        self.subject = subject
        self.predicate = predicate
        self.object = object
        self._hash = hash((subject, predicate, object))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Triple)
            and self.subject == other.subject
            and self.predicate == other.predicate
            and self.object == other.object
        )

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self) -> Iterator[Term]:
        yield self.subject
        yield self.predicate
        yield self.object

    def __repr__(self) -> str:
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."


class TriplePattern:
    """A triple pattern whose positions may be variables.

    Patterns are immutable and hashable so that decomposition structures
    (GJV evidence, subqueries, visited sets) can key on them directly.
    """

    __slots__ = ("subject", "predicate", "object", "_hash")

    def __init__(self, subject: PatternTerm, predicate: PatternTerm, object: PatternTerm):
        self.subject = subject
        self.predicate = predicate
        self.object = object
        self._hash = hash((TriplePattern, subject, predicate, object))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TriplePattern)
            and self.subject == other.subject
            and self.predicate == other.predicate
            and self.object == other.object
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"TriplePattern({self.subject!r}, {self.predicate!r}, {self.object!r})"

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def positions(self) -> tuple[PatternTerm, PatternTerm, PatternTerm]:
        return (self.subject, self.predicate, self.object)

    def variables(self) -> set[Variable]:
        """All variables appearing anywhere in the pattern."""
        return {p for p in self.positions() if isinstance(p, Variable)}

    def variable_positions(self, variable: Variable) -> set[str]:
        """The positions ('subject'/'predicate'/'object') holding ``variable``."""
        found = set()
        if self.subject == variable:
            found.add("subject")
        if self.predicate == variable:
            found.add("predicate")
        if self.object == variable:
            found.add("object")
        return found

    def is_concrete(self) -> bool:
        return all(is_concrete(p) for p in self.positions())

    def to_triple(self) -> Triple:
        """Convert to a concrete triple; raises if any position is a variable."""
        return Triple(self.subject, self.predicate, self.object)  # type: ignore[arg-type]

    def bind(self, bindings: Mapping[Variable, Term]) -> "TriplePattern":
        """A copy with every bound variable replaced by its value."""

        def substitute(position: PatternTerm) -> PatternTerm:
            if isinstance(position, Variable):
                return bindings.get(position, position)
            return position

        return TriplePattern(
            substitute(self.subject), substitute(self.predicate), substitute(self.object)
        )

    def matches(self, triple: Triple) -> bool:
        """True if the pattern matches the triple under *some* binding.

        Repeated variables must bind consistently, e.g. ``?x :p ?x`` only
        matches triples whose subject equals the object.
        """
        bindings: dict[Variable, Term] = {}
        for pattern_pos, data_pos in zip(self.positions(), triple):
            if isinstance(pattern_pos, Variable):
                seen = bindings.get(pattern_pos)
                if seen is None:
                    bindings[pattern_pos] = data_pos
                elif seen != data_pos:
                    return False
            elif pattern_pos != data_pos:
                return False
        return True

    def selectivity_class(self) -> int:
        """Heuristic selectivity rank (lower = more selective).

        Mirrors FedX's variable-counting heuristic: fully bound patterns are
        most selective; patterns with three variables least.  Ties between
        equal variable counts are broken by *which* positions are bound —
        a bound subject is worth more than a bound object, which is worth
        more than a bound predicate.
        """
        rank = 0
        if isinstance(self.subject, Variable):
            rank += 4
        if isinstance(self.object, Variable):
            rank += 2
        if isinstance(self.predicate, Variable):
            rank += 1
        return rank
