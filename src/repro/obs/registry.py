"""Labeled counters and histograms for the federation layer.

A :class:`MetricsRegistry` is the shared sink every component reports
into: the virtual network (per-endpoint request/row/byte counters and
request-duration histograms, labeled by engine and request kind), the
scheduler (bound-join blocks, mediator join rows), the estimate audit
(per-decision q-error series), and the engines themselves (queries by
status, delayed subqueries).  It supersedes the ad-hoc per-component
counters: aggregate anything by filtering on labels instead of
threading counts through return values.

Metric series are keyed by ``(name, sorted labels)``.  Counters are
monotonic floats; histograms keep count/sum/min/max plus fixed
log2-scale buckets, from which approximate p50/p95/p99 are derived —
still cheap enough to leave always on (the registry never touches
virtual time), trivially serializable via :meth:`snapshot`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


#: Log2-bucket index range.  Bucket ``i`` covers ``(2**(i-1), 2**i]``;
#: values at or below zero land in the underflow bucket ``_BUCKET_LO``.
_BUCKET_LO = -64
_BUCKET_HI = 64


def _bucket_index(value: float) -> int:
    if value <= 0.0:
        return _BUCKET_LO
    index = math.ceil(math.log2(value))
    return max(_BUCKET_LO, min(_BUCKET_HI, index))


@dataclass
class HistogramStats:
    """Summary statistics of one histogram series.

    Alongside count/sum/min/max, observations fall into fixed log2
    buckets (bucket ``i`` holds values in ``(2**(i-1), 2**i]``), giving
    approximate percentiles without storing samples.  ``min`` and
    ``max`` are ``None`` while the series is empty — the same empty
    semantics :meth:`MetricsRegistry.snapshot` exports — so sentinel
    infinities never leak into reports.
    """

    count: int = 0
    sum: float = 0.0
    min: float | None = None
    max: float | None = None
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "HistogramStats") -> None:
        """Fold another series into this one (used by registry queries)."""
        self.count += other.count
        self.sum += other.sum
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        for index, bucket_count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + bucket_count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Approximate q-quantile (``q`` in [0, 1]) from the log2 buckets.

        Returns the upper bound of the bucket where the cumulative count
        crosses ``q * count``, clamped to the observed [min, max] — so
        the estimate is never outside the true value range.  ``None``
        for an empty series.
        """
        if not self.count or self.min is None or self.max is None:
            return None
        target = q * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                upper = self.min if index == _BUCKET_LO else float(2**index)
                return min(self.max, max(self.min, upper))
        return self.max

    @property
    def p50(self) -> float | None:
        return self.percentile(0.50)

    @property
    def p95(self) -> float | None:
        return self.percentile(0.95)

    @property
    def p99(self) -> float | None:
        return self.percentile(0.99)


class MetricsRegistry:
    """Labeled counter / histogram store with snapshot export."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], float] = {}
        self._histograms: dict[tuple[str, LabelKey], HistogramStats] = {}

    # ------------------------------------------------------------ recording

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = (name, _label_key(labels))
        self._counters[key] = self._counters.get(key, 0.0) + value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = (name, _label_key(labels))
        stats = self._histograms.get(key)
        if stats is None:
            stats = self._histograms[key] = HistogramStats()
        stats.observe(value)

    # -------------------------------------------------------------- queries

    def counter_value(self, name: str, **labels: Any) -> float:
        """Sum of all series of ``name`` whose labels include ``labels``."""
        wanted = set(_label_key(labels))
        return sum(
            value
            for (metric, key), value in self._counters.items()
            if metric == name and wanted <= set(key)
        )

    def counter_series(self, name: str) -> dict[LabelKey, float]:
        """Every label combination recorded for one counter."""
        return {
            key: value for (metric, key), value in self._counters.items() if metric == name
        }

    def label_values(self, name: str, label: str) -> set[str]:
        """Distinct values one label takes across a counter's series."""
        values: set[str] = set()
        for (metric, key), __ in self._counters.items():
            if metric != name:
                continue
            for label_name, label_value in key:
                if label_name == label:
                    values.add(label_value)
        return values

    def histogram(self, name: str, **labels: Any) -> HistogramStats:
        """Merged histogram stats across matching series.

        When no series matches, the result is an *empty* stats object
        (count 0, ``min``/``max`` ``None``) — not infinity sentinels.
        """
        wanted = set(_label_key(labels))
        merged = HistogramStats()
        for (metric, key), stats in self._histograms.items():
            if metric != name or not wanted <= set(key):
                continue
            merged.merge(stats)
        return merged

    def histogram_series(self, name: str) -> dict[LabelKey, HistogramStats]:
        """Every label combination recorded for one histogram."""
        return {
            key: stats
            for (metric, key), stats in self._histograms.items()
            if metric == name
        }

    def __iter__(self) -> Iterator[tuple[str, LabelKey, float]]:
        for (name, key), value in sorted(self._counters.items()):
            yield name, key, value

    # --------------------------------------------------------------- export

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of every series, sorted for stable diffs."""
        counters = [
            {"name": name, "labels": dict(key), "value": value}
            for (name, key), value in sorted(self._counters.items())
        ]
        histograms = [
            {
                "name": name,
                "labels": dict(key),
                "count": stats.count,
                "sum": stats.sum,
                "min": stats.min,
                "max": stats.max,
                "p50": stats.p50,
                "p95": stats.p95,
                "p99": stats.p99,
            }
            for (name, key), stats in sorted(self._histograms.items())
        ]
        return {"counters": counters, "histograms": histograms}

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()


#: Process-wide registry engines default to; per-run tooling (the
#: ``profile`` command, tests) passes its own for isolation.
_DEFAULT_REGISTRY = MetricsRegistry()


def get_default_registry() -> MetricsRegistry:
    return _DEFAULT_REGISTRY
