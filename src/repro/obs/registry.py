"""Labeled counters and histograms for the federation layer.

A :class:`MetricsRegistry` is the shared sink every component reports
into: the virtual network (per-endpoint request/row/byte counters and
request-duration histograms, labeled by engine and request kind), the
scheduler (bound-join blocks, mediator join rows), and the engines
themselves (queries by status, delayed subqueries).  It supersedes the
ad-hoc per-component counters: aggregate anything by filtering on
labels instead of threading counts through return values.

Metric series are keyed by ``(name, sorted labels)``.  Counters are
monotonic floats; histograms keep count/sum/min/max — enough for the
benchmark harness without a bucketing scheme.  The registry is plain
dictionaries: cheap enough to leave always on (it never touches virtual
time), trivially serializable via :meth:`snapshot`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


@dataclass
class HistogramStats:
    """Summary statistics of one histogram series."""

    count: int = 0
    sum: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Labeled counter / histogram store with snapshot export."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], float] = {}
        self._histograms: dict[tuple[str, LabelKey], HistogramStats] = {}

    # ------------------------------------------------------------ recording

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = (name, _label_key(labels))
        self._counters[key] = self._counters.get(key, 0.0) + value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = (name, _label_key(labels))
        stats = self._histograms.get(key)
        if stats is None:
            stats = self._histograms[key] = HistogramStats()
        stats.observe(value)

    # -------------------------------------------------------------- queries

    def counter_value(self, name: str, **labels: Any) -> float:
        """Sum of all series of ``name`` whose labels include ``labels``."""
        wanted = set(_label_key(labels))
        return sum(
            value
            for (metric, key), value in self._counters.items()
            if metric == name and wanted <= set(key)
        )

    def counter_series(self, name: str) -> dict[LabelKey, float]:
        """Every label combination recorded for one counter."""
        return {
            key: value for (metric, key), value in self._counters.items() if metric == name
        }

    def label_values(self, name: str, label: str) -> set[str]:
        """Distinct values one label takes across a counter's series."""
        values: set[str] = set()
        for (metric, key), __ in self._counters.items():
            if metric != name:
                continue
            for label_name, label_value in key:
                if label_name == label:
                    values.add(label_value)
        return values

    def histogram(self, name: str, **labels: Any) -> HistogramStats:
        """Merged histogram stats across matching series."""
        wanted = set(_label_key(labels))
        merged = HistogramStats()
        for (metric, key), stats in self._histograms.items():
            if metric != name or not wanted <= set(key):
                continue
            merged.count += stats.count
            merged.sum += stats.sum
            merged.min = min(merged.min, stats.min)
            merged.max = max(merged.max, stats.max)
        return merged

    def __iter__(self) -> Iterator[tuple[str, LabelKey, float]]:
        for (name, key), value in sorted(self._counters.items()):
            yield name, key, value

    # --------------------------------------------------------------- export

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of every series, sorted for stable diffs."""
        counters = [
            {"name": name, "labels": dict(key), "value": value}
            for (name, key), value in sorted(self._counters.items())
        ]
        histograms = [
            {
                "name": name,
                "labels": dict(key),
                "count": stats.count,
                "sum": stats.sum,
                "min": stats.min if stats.count else None,
                "max": stats.max if stats.count else None,
            }
            for (name, key), stats in sorted(self._histograms.items())
        ]
        return {"counters": counters, "histograms": histograms}

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()


#: Process-wide registry engines default to; per-run tooling (the
#: ``profile`` command, tests) passes its own for isolation.
_DEFAULT_REGISTRY = MetricsRegistry()


def get_default_registry() -> MetricsRegistry:
    return _DEFAULT_REGISTRY
