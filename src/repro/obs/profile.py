"""Post-hoc EXPLAIN ANALYZE analysis over the virtual-time span tree.

Three consumers of a finished trace:

* :func:`critical_path` / :func:`critical_sections` — the blocking
  chain that gates end-to-end latency.  Virtually-concurrent work
  appears as sibling spans with overlapping intervals, so the path is
  extracted Jaeger-style by a backward sweep: starting from the root's
  end, repeatedly descend into the *last-finishing* child at or before
  the cursor, then continue leftward from that child's start.  The
  resulting sections tile the root interval exactly — their lengths sum
  to the root's inclusive time.
* :func:`chrome_trace_events` / :func:`folded_stacks` — flamegraph
  exports: Chrome trace-event JSON (``chrome://tracing`` / Perfetto)
  and Brendan-Gregg folded stacks weighted by exclusive virtual time.
* :class:`ProfileReport` / :func:`render_explain_analyze` — the JSON
  artifact the harness emits per (engine, query) and the annotated plan
  tree the ``explain-analyze`` CLI mode prints (rows est→act, q-error,
  critical-path markers, request counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.audit import Q_ERROR_METRIC
from repro.obs.registry import HistogramStats, MetricsRegistry
from repro.obs.trace import Span

#: Tolerance for float comparisons on virtual timestamps.
_EPS = 1e-6


def _end(span: Span) -> float:
    return span.t1_ms if span.t1_ms is not None else span.t0_ms


# ---------------------------------------------------------- critical path

def critical_sections(root: Span) -> list[tuple[Span, float, float]]:
    """The blocking chain as ``(span, lo_ms, hi_ms)`` sections.

    Sections are disjoint, chronologically ordered, and tile the root's
    interval: summing ``hi - lo`` gives exactly the root's inclusive
    virtual time.  Each section is attributed to the deepest span that
    was gating progress during that interval.
    """
    sections: list[tuple[Span, float, float]] = []

    def visit(span: Span, hi: float) -> None:
        cursor = min(hi, _end(span))
        # Latest-finishing child first; ties broken by id for determinism.
        children = sorted(span.children, key=lambda c: (_end(c), c.id))
        while cursor > span.t0_ms + _EPS and children:
            pick = None
            for index in range(len(children) - 1, -1, -1):
                if _end(children[index]) <= cursor + _EPS:
                    pick = children.pop(index)
                    break
            if pick is None:
                break
            # Gap between the gating child's end and the cursor is the
            # span's own (self) time on the path.
            child_end = min(cursor, _end(pick))
            if cursor > child_end + _EPS:
                sections.append((span, child_end, cursor))
            visit(pick, child_end)
            cursor = max(span.t0_ms, pick.t0_ms)
        if cursor > span.t0_ms + _EPS:
            sections.append((span, span.t0_ms, cursor))

    visit(root, _end(root))
    sections.sort(key=lambda item: (item[1], item[0].id))
    return sections


def critical_path(root: Span) -> list[Span]:
    """Spans on the blocking chain, chronological, root first."""
    seen: dict[int, Span] = {}
    ordered: list[Span] = [root]
    seen[root.id] = root
    for span, __, __hi in critical_sections(root):
        if span.id not in seen:
            seen[span.id] = span
            ordered.append(span)
    ordered.sort(key=lambda s: (s.t0_ms, s.id))
    return ordered


def critical_path_ids(root: Span) -> set[int]:
    return {span.id for span in critical_path(root)}


# ------------------------------------------------------ flamegraph exports

def _assign_lanes(root: Span) -> dict[int, int]:
    """Map span id -> Chrome ``tid`` lane so events nest properly.

    Children share their parent's lane when they do not overlap a
    sibling already placed there; virtually-concurrent siblings spill
    onto fresh lanes.  Within a lane every pair of events is either
    disjoint or properly nested — the shape ``chrome://tracing`` needs.
    """
    lanes = {root.id: 1}
    next_lane = [2]

    def visit(span: Span) -> None:
        lane_busy: dict[int, float] = {}
        parent_lane = lanes[span.id]
        for child in sorted(span.children, key=lambda c: (c.t0_ms, c.id)):
            placed = None
            for candidate in [parent_lane, *sorted(l for l in lane_busy if l != parent_lane)]:
                if child.t0_ms >= lane_busy.get(candidate, float("-inf")) - _EPS:
                    placed = candidate
                    break
            if placed is None:
                placed = next_lane[0]
                next_lane[0] += 1
            lanes[child.id] = placed
            lane_busy[placed] = max(lane_busy.get(placed, float("-inf")), _end(child))
            visit(child)

    visit(root)
    return lanes


def chrome_trace_events(roots: Iterable[Span]) -> dict[str, Any]:
    """Trace-event JSON (``ph: "X"`` complete events, µs timestamps)."""
    from repro.obs.export import _jsonable  # local: avoids import cycle

    events: list[dict[str, Any]] = []
    for pid, root in enumerate(roots, start=1):
        lanes = _assign_lanes(root)
        for span in root.walk():
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": round(span.t0_ms * 1000.0, 3),
                    "dur": round((_end(span) - span.t0_ms) * 1000.0, 3),
                    "pid": pid,
                    "tid": lanes[span.id],
                    "args": _jsonable(span.attrs),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def folded_stacks(roots: Iterable[Span]) -> list[str]:
    """Folded-stack lines (``a;b;c weight``) for flamegraph tooling.

    The weight is the span's *exclusive* virtual time in integer
    microseconds, so stacks sum to end-to-end latency without double
    counting parents.  Zero-weight frames are kept only when they carry
    no children (pure markers are still visible in the graph).
    """
    weights: dict[str, int] = {}

    def visit(span: Span, prefix: str) -> None:
        stack = f"{prefix};{span.name}" if prefix else span.name
        weight = int(round(span.exclusive_ms * 1000.0))
        if weight > 0 or not span.children:
            weights[stack] = weights.get(stack, 0) + weight
        for child in span.children:
            visit(child, stack)

    for root in roots:
        visit(root, "")
    return [f"{stack} {weight}" for stack, weight in sorted(weights.items())]


# ---------------------------------------------------------- profile report

def q_error_summary(registry: MetricsRegistry, engine: str) -> dict[str, dict[str, Any]]:
    """Per-decision q-error digest for one engine, from the registry.

    Merges every endpoint-labeled ``estimate_q_error`` series of the
    engine into one histogram per decision and remembers which endpoint
    produced the worst error.
    """
    merged: dict[str, HistogramStats] = {}
    worst_endpoint: dict[str, tuple[float, str]] = {}
    for key, stats in registry.histogram_series(Q_ERROR_METRIC).items():
        labels = dict(key)
        if labels.get("engine") != engine or not stats.count:
            continue
        decision = labels.get("decision", "?")
        agg = merged.setdefault(decision, HistogramStats())
        agg.merge(stats)
        endpoint = labels.get("endpoint", "*")
        peak = stats.max if stats.max is not None else 1.0
        if decision not in worst_endpoint or peak > worst_endpoint[decision][0]:
            worst_endpoint[decision] = (peak, endpoint)
    summary: dict[str, dict[str, Any]] = {}
    for decision in sorted(merged):
        stats = merged[decision]
        summary[decision] = {
            "count": stats.count,
            "mean": round(stats.mean, 3),
            "max": round(stats.max, 3) if stats.max is not None else None,
            "p50": round(stats.p50, 3) if stats.p50 is not None else None,
            "p95": round(stats.p95, 3) if stats.p95 is not None else None,
            "p99": round(stats.p99, 3) if stats.p99 is not None else None,
            "worst_endpoint": worst_endpoint[decision][1],
        }
    return summary


@dataclass
class ProfileReport:
    """One (engine, query) EXPLAIN ANALYZE artifact, JSON-serializable."""

    engine: str
    query: str
    status: str
    virtual_ms: float
    requests: int
    rows_shipped: int
    result_rows: int
    #: Planner metadata traffic (ask / check / count / stats requests
    #: actually issued) — the request storm the characteristic-set
    #: statistics are meant to kill.
    metadata_requests: int = 0
    requests_by_kind: dict[str, int] = field(default_factory=dict)
    span_count: int = 0
    critical_path: list[dict[str, Any]] = field(default_factory=list)
    critical_path_ms: float = 0.0
    q_error: dict[str, dict[str, Any]] = field(default_factory=dict)
    worst_q_error: float = 1.0
    estimates: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "query": self.query,
            "status": self.status,
            "virtual_ms": round(self.virtual_ms, 6),
            "requests": self.requests,
            "rows_shipped": self.rows_shipped,
            "result_rows": self.result_rows,
            "metadata_requests": self.metadata_requests,
            "requests_by_kind": dict(sorted(self.requests_by_kind.items())),
            "span_count": self.span_count,
            "critical_path": self.critical_path,
            "critical_path_ms": round(self.critical_path_ms, 6),
            "q_error": self.q_error,
            "worst_q_error": round(self.worst_q_error, 3),
            "estimates": self.estimates,
        }


#: Cap on raw estimate records embedded in a report (the registry keeps
#: the full histograms regardless).
_MAX_ESTIMATE_RECORDS = 200


def build_profile_report(
    engine: str,
    query: str,
    status: str,
    root: Span | None,
    registry: MetricsRegistry,
    metrics=None,
    result_rows: int = 0,
    audit=None,
) -> ProfileReport:
    """Assemble a :class:`ProfileReport` from one traced execution.

    ``root`` is the execution's root span (``None`` tolerated — the
    report then has an empty critical path), ``metrics`` the per-query
    :class:`~repro.net.metrics.QueryMetrics`, ``audit`` the
    :class:`~repro.obs.audit.EstimateAudit` that collected raw records.
    """
    requests_by_kind: dict[str, int] = {}
    requests = 0
    rows_shipped = 0
    metadata_requests = 0
    virtual_ms = 0.0
    if metrics is not None:
        requests = metrics.request_count()
        rows_shipped = metrics.rows_shipped()
        metadata_requests = metrics.metadata_request_count()
        virtual_ms = metrics.virtual_ms
        for stats in metrics.endpoint_summary().values():
            for kind, count in stats["by_kind"].items():
                requests_by_kind[kind] = requests_by_kind.get(kind, 0) + count

    path_entries: list[dict[str, Any]] = []
    path_ms = 0.0
    span_count = 0
    if root is not None:
        span_count = sum(1 for __ in root.walk())
        self_ms: dict[int, float] = {}
        for span, lo, hi in critical_sections(root):
            self_ms[span.id] = self_ms.get(span.id, 0.0) + (hi - lo)
        for span in critical_path(root):
            entry: dict[str, Any] = {
                "name": span.name,
                "t0_ms": round(span.t0_ms, 6),
                "t1_ms": round(_end(span), 6),
                "self_ms": round(self_ms.get(span.id, 0.0), 6),
            }
            for key in ("endpoint", "subquery", "requests", "rows"):
                if key in span.attrs:
                    entry[key] = span.attrs[key]
            path_entries.append(entry)
        path_ms = sum(entry["self_ms"] for entry in path_entries)

    summary = q_error_summary(registry, engine)
    worst = max(
        (digest["max"] for digest in summary.values() if digest["max"] is not None),
        default=1.0,
    )
    estimates: list[dict[str, Any]] = []
    if audit is not None and getattr(audit, "enabled", False):
        estimates = [record.to_dict() for record in audit.records[:_MAX_ESTIMATE_RECORDS]]

    return ProfileReport(
        engine=engine,
        query=query,
        status=status,
        virtual_ms=virtual_ms,
        requests=requests,
        rows_shipped=rows_shipped,
        result_rows=result_rows,
        metadata_requests=metadata_requests,
        requests_by_kind=requests_by_kind,
        span_count=span_count,
        critical_path=path_entries,
        critical_path_ms=path_ms,
        q_error=summary,
        worst_q_error=worst,
        estimates=estimates,
    )


# -------------------------------------------------------- explain analyze

#: Attributes already rendered in their own columns.
_RENDERED_ATTRS = (
    "requests",
    "rows",
    "estimated_cardinality",
    "q_error",
    "audit",
    "estimated_cardinalities",
)


def _est_act(span: Span) -> str:
    """``est→act`` row column: prefers audit records, falls back to attrs."""
    audit_entries = span.attrs.get("audit") or ()
    rows = span.attrs.get("rows")
    estimate = span.attrs.get("estimated_cardinality")
    if estimate is None:
        for entry in audit_entries:
            if entry.get("endpoint") == "*" or len(audit_entries) == 1:
                estimate = entry.get("estimated")
                if rows is None:
                    rows = entry.get("actual")
                break
    if estimate is None and rows is None:
        return ""
    left = "?" if estimate is None else f"{estimate:g}"
    right = "?" if rows is None else f"{rows:g}"
    return f"{left}→{right}"


def render_explain_analyze(root: Span, critical: set[int] | None = None) -> str:
    """Annotated plan tree: est→act rows, q-error, critical path, requests.

    Spans on the critical path are marked with ``*`` in the first
    column; the q-error column shows the worst audited estimate error
    recorded on that span.
    """
    if critical is None:
        critical = critical_path_ids(root)
    lines = [
        f"{'':1}{'span':<43} {'incl_ms':>10} {'excl_ms':>10} {'reqs':>6} "
        f"{'rows est→act':>14} {'q_err':>7}  notes"
    ]

    def visit(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        marker = "*" if span.id in critical else " "
        label = f"{prefix}{connector}{span.name}"
        requests = span.attrs.get("requests", "")
        q_err = span.attrs.get("q_error")
        q_text = f"q{q_err:.1f}" if isinstance(q_err, (int, float)) else ""
        notes = " ".join(
            f"{key}={value}"
            for key, value in span.attrs.items()
            if key not in _RENDERED_ATTRS
        )
        lines.append(
            f"{marker}{label:<43} {span.inclusive_ms:>10.2f} {span.exclusive_ms:>10.2f} "
            f"{requests!s:>6} {_est_act(span):>14} {q_text:>7}  {notes}".rstrip()
        )
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        for index, child in enumerate(span.children):
            visit(child, child_prefix, index == len(span.children) - 1, False)

    visit(root, "", True, True)
    lines.append("(* = on the critical path)")
    return "\n".join(lines)


def render_q_error_table(summary: dict[str, dict[str, Any]]) -> str:
    """Human-readable per-decision q-error digest."""
    if not summary:
        return "no audited estimates (tracing was off or no decisions ran)"
    from repro.harness.reporting import format_table  # local: avoids import cycle

    headers = ["decision", "count", "mean", "p50", "p95", "p99", "max", "worst endpoint"]
    rows = []
    for decision in sorted(summary):
        digest = summary[decision]
        rows.append(
            [
                decision,
                digest["count"],
                f"{digest['mean']:.2f}",
                _fmt(digest["p50"]),
                _fmt(digest["p95"]),
                _fmt(digest["p99"]),
                _fmt(digest["max"]),
                digest["worst_endpoint"],
            ]
        )
    return format_table(headers, rows)


def _fmt(value) -> str:
    return "-" if value is None else f"{value:.2f}"
