"""Estimate-vs-actual auditing: the measurement half of EXPLAIN ANALYZE.

Every place an estimate drives a runtime decision — SAPE's COUNT-based
``estimated_cardinality`` and the delay decision built on it, DP/greedy
join ordering's ``join_cost_units``, adaptive bound-join block sizing,
compiled-plan probe ordering inside endpoints, and the baselines'
VoID-index operand estimates — reports the ``(estimated, actual)`` pair
here.  The audit converts each pair into a **q-error**
(``max(est/act, act/est)``, both clamped to >= 1 so zero rows do not
divide), feeds a per-site histogram labeled by engine / decision /
endpoint into the metrics registry, and annotates the active span so
the ``explain-analyze`` renderer can print ``rows est->act (qN.N)``
inline in the plan tree.

Auditing rides on tracing: a :class:`~repro.endpoint.client.FederationClient`
owns a real :class:`EstimateAudit` only when its tracer is enabled and
the shared :data:`NULL_AUDIT` otherwise, so the audit — like spans — is
exactly free when observability is off.  Hook sites that must *compute*
an estimate or actual solely for auditing guard on :attr:`enabled`
first.  Nothing the audit does may touch virtual time, request counts,
or results: the traced-vs-untraced invariance test enforces that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Histogram of q-errors, labeled engine/decision/endpoint.
Q_ERROR_METRIC = "estimate_q_error"
#: Companion counter: number of audited decisions per site.
AUDIT_COUNTER = "estimate_audit_total"


def q_error(estimated: float, actual: float) -> float:
    """Multiplicative estimation error: ``max(est/act, act/est)``.

    Both sides are clamped to >= 1 first — the standard guard so empty
    results (0 rows) or sub-row estimates do not blow the ratio up to
    infinity.  1.0 means the estimate was exact (or both sides empty).
    """
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return est / act if est >= act else act / est


@dataclass
class AuditRecord:
    """One audited decision: what was predicted, what happened."""

    decision: str
    estimated: float
    actual: float
    q_error: float
    endpoint: str = "*"
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "decision": self.decision,
            "endpoint": self.endpoint,
            "estimated": round(self.estimated, 3),
            "actual": round(self.actual, 3),
            "q_error": round(self.q_error, 3),
        }
        if self.detail:
            entry.update(self.detail)
        return entry


class EstimateAudit:
    """Collects (estimated, actual) pairs for one engine's query run.

    ``record`` is the single entry point; it feeds the registry, keeps
    the raw record (for the :class:`~repro.obs.profile.ProfileReport`),
    and — when given a span — appends a compact dict to the span's
    ``audit`` attribute and tracks the worst q-error seen on that span
    in its ``q_error`` attribute.
    """

    enabled = True

    def __init__(self, registry, engine: str) -> None:
        self.registry = registry
        self.engine = engine
        self.records: list[AuditRecord] = []

    def record(
        self,
        decision: str,
        estimated: float,
        actual: float,
        endpoint: str = "*",
        span=None,
        shard: int | None = None,
        **detail: Any,
    ) -> AuditRecord:
        if shard is not None:
            detail["shard"] = shard
        error = q_error(estimated, actual)
        entry = AuditRecord(
            decision=decision,
            estimated=float(estimated),
            actual=float(actual),
            q_error=error,
            endpoint=endpoint,
            detail=dict(detail),
        )
        self.records.append(entry)
        if self.registry is not None:
            # The shard dimension is opt-in per record so un-sharded
            # sites keep their existing label sets (and series).
            labels: dict[str, Any] = {
                "engine": self.engine,
                "decision": decision,
                "endpoint": endpoint,
            }
            if shard is not None:
                labels["shard"] = str(shard)
            self.registry.observe(Q_ERROR_METRIC, error, **labels)
            self.registry.inc(AUDIT_COUNTER, **labels)
        if span is not None:
            span.attrs.setdefault("audit", []).append(entry.to_dict())
            worst = span.attrs.get("q_error")
            if worst is None or error > worst:
                span.attrs["q_error"] = round(error, 3)
        return entry

    def worst(self) -> AuditRecord | None:
        """The record with the largest q-error, or None when empty."""
        return max(self.records, key=lambda r: r.q_error, default=None)


class _NullAudit:
    """Shared no-op audit used while tracing is disabled."""

    __slots__ = ()

    enabled = False
    engine = "<disabled>"
    records: tuple = ()

    def record(
        self, decision, estimated, actual, endpoint="*", span=None, shard=None, **detail
    ):
        return None

    def worst(self):
        return None


NULL_AUDIT = _NullAudit()


def make_audit(registry, engine: str, enabled: bool) -> "EstimateAudit | _NullAudit":
    """A real audit when observability is on, the shared no-op otherwise."""
    return EstimateAudit(registry, engine) if enabled else NULL_AUDIT
