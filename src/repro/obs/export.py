"""Exporters for traces and metrics.

Three consumers, three formats:

* **JSONL traces** — one span per line (``id``, ``parent_id``, ``name``,
  ``t0_ms``, ``t1_ms``, ``attrs``), depth-first so a parent always
  precedes its children.  Machine-readable substrate for the benchmark
  trajectory and for external tooling.
* **JSON metrics snapshots** — a :class:`~repro.obs.registry.MetricsRegistry`
  dump the harness can commit as ``BENCH_*.json``.
* **Human-readable renderings** — the span tree with inclusive /
  exclusive virtual time and the per-endpoint summary table that
  ``python -m repro profile`` prints.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from repro.obs.trace import Span

#: Span attributes promoted into their own tree-view columns.
_TREE_COLUMNS = ("requests", "rows")


# ----------------------------------------------------------------- JSONL

def span_to_dict(span: Span) -> dict[str, Any]:
    return {
        "id": span.id,
        "parent_id": span.parent_id,
        "name": span.name,
        "t0_ms": round(span.t0_ms, 6),
        "t1_ms": round(span.t1_ms if span.t1_ms is not None else span.t0_ms, 6),
        "attrs": _jsonable(span.attrs),
    }


def _jsonable(value: Any) -> Any:
    """Coerce span attributes to JSON-safe values (sets, terms, etc.)."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_jsonable(item) for item in value]
        return sorted(items, key=str) if isinstance(value, (set, frozenset)) else items
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_trace_jsonl(roots: Iterable[Span], path: str) -> int:
    """Write every span under ``roots`` as JSON lines; returns span count."""
    count = 0
    with open(path, "w", encoding="utf-8") as stream:
        for root in roots:
            for span in root.walk():
                stream.write(json.dumps(span_to_dict(span), sort_keys=True))
                stream.write("\n")
                count += 1
    return count


def write_trace_chrome(roots: Iterable[Span], path: str) -> int:
    """Write spans as Chrome trace-event JSON; returns event count.

    The artifact opens directly in ``chrome://tracing`` and Perfetto:
    one ``pid`` per root query, virtually-concurrent siblings fanned
    out across ``tid`` lanes (see
    :func:`repro.obs.profile.chrome_trace_events`).
    """
    from repro.obs.profile import chrome_trace_events  # local: avoids import cycle

    payload = chrome_trace_events(roots)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, sort_keys=True)
        stream.write("\n")
    return len(payload["traceEvents"])


def write_folded_stacks(roots: Iterable[Span], path: str) -> int:
    """Write folded-stack lines (flamegraph.pl input); returns line count."""
    from repro.obs.profile import folded_stacks  # local: avoids import cycle

    lines = folded_stacks(roots)
    with open(path, "w", encoding="utf-8") as stream:
        for line in lines:
            stream.write(line)
            stream.write("\n")
    return len(lines)


def load_trace_jsonl(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL trace back into span dicts (raises on malformed lines)."""
    spans: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def validate_trace(spans: Sequence[dict[str, Any]]) -> list[str]:
    """Structural checks on exported spans; returns problem descriptions.

    A well-formed trace has unique ids, parents that exist and precede
    their children, non-negative intervals, and children contained in
    their parent's virtual interval (tolerating float rounding).
    """
    problems: list[str] = []
    seen: dict[int, dict[str, Any]] = {}
    for span in spans:
        span_id = span.get("id")
        if not isinstance(span_id, int):
            problems.append(f"span without integer id: {span!r}")
            continue
        if span_id in seen:
            problems.append(f"duplicate span id {span_id}")
        parent_id = span.get("parent_id")
        if parent_id is not None:
            parent = seen.get(parent_id)
            if parent is None:
                problems.append(f"span {span_id} references unknown/later parent {parent_id}")
            else:
                if span["t0_ms"] < parent["t0_ms"] - 1e-6:
                    problems.append(f"span {span_id} starts before parent {parent_id}")
                if span["t1_ms"] > parent["t1_ms"] + 1e-6:
                    problems.append(f"span {span_id} ends after parent {parent_id}")
        if span["t1_ms"] < span["t0_ms"] - 1e-6:
            problems.append(f"span {span_id} has negative duration")
        seen[span_id] = span
    if spans and not any(span.get("parent_id") is None for span in spans):
        problems.append("trace has no root span")
    return problems


# ------------------------------------------------------------------ JSON

def write_metrics_json(registry, path: str) -> None:
    """Dump a metrics registry snapshot (see MetricsRegistry.snapshot)."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(registry.snapshot(), stream, indent=2, sort_keys=True)
        stream.write("\n")


# ------------------------------------------------------------ human view

def _attr_text(attrs: dict[str, Any]) -> str:
    parts = [
        f"{key}={_jsonable(value)}"
        for key, value in attrs.items()
        if key not in _TREE_COLUMNS
    ]
    return " ".join(parts)


def render_span_tree(root: Span) -> str:
    """ASCII tree: inclusive/exclusive virtual ms, requests, rows, attrs."""
    lines = [
        f"{'span':<44} {'incl_ms':>10} {'excl_ms':>10} {'reqs':>6} {'rows':>8}  attrs"
    ]

    def visit(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        label = f"{prefix}{connector}{span.name}"
        requests = span.attrs.get("requests", "")
        rows = span.attrs.get("rows", "")
        lines.append(
            f"{label:<44} {span.inclusive_ms:>10.2f} {span.exclusive_ms:>10.2f} "
            f"{requests!s:>6} {rows!s:>8}  {_attr_text(span.attrs)}".rstrip()
        )
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        for index, child in enumerate(span.children):
            visit(child, child_prefix, index == len(span.children) - 1, False)

    visit(root, "", True, True)
    return "\n".join(lines)


def plan_cache_summary(registry) -> str:
    """One-line compiled-plan summary: cache hit rate + time split.

    Sources the ``plan_cache_*_total`` counters and the
    ``endpoint_plan_{compile,execute}_seconds`` histograms the
    federation client mirrors from endpoints.  Empty string when no
    endpoint evaluation happened (e.g. a purely cached run).
    """
    hits = int(registry.counter_value("plan_cache_hits_total"))
    misses = int(registry.counter_value("plan_cache_misses_total"))
    lookups = hits + misses
    if not lookups:
        return ""
    evictions = int(registry.counter_value("plan_cache_evictions_total"))
    rate = hits / lookups
    compile_stats = registry.histogram("endpoint_plan_compile_seconds")
    execute_stats = registry.histogram("endpoint_plan_execute_seconds")
    return (
        f"endpoint plans: {hits}/{lookups} cache hits ({rate:.0%}), "
        f"{misses} compiled, {evictions} evicted; "
        f"compile {compile_stats.sum * 1e3:.2f} ms, "
        f"execute {execute_stats.sum * 1e3:.2f} ms wall"
    )


def endpoint_summary_table(metrics) -> str:
    """Per-endpoint request/row/byte/busy-time table for one query."""
    from repro.harness.reporting import format_table  # local: avoids import cycle
    from repro.net.metrics import REQUEST_KINDS

    summary = metrics.endpoint_summary()
    headers = ["endpoint", *REQUEST_KINDS, "cached", "rows", "bytes", "busy_ms"]
    rows = []
    for endpoint in sorted(summary):
        stats = summary[endpoint]
        rows.append(
            [
                endpoint,
                *[stats["by_kind"].get(kind, 0) for kind in REQUEST_KINDS],
                stats["cached"],
                stats["rows"],
                stats["bytes"],
                f"{stats['busy_ms']:.2f}",
            ]
        )
    return format_table(headers, rows)
