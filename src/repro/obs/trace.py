"""Hierarchical span tracing for the query lifecycle.

A :class:`Span` covers one stage of a federated query execution —
source selection, a single locality check query, the delay decision, one
phase-2 bound-join block, a mediator join — and records the stage's
**virtual-time** interval plus free-form attributes (endpoint, subquery
id, rows, estimated vs. actual cardinality).

Because the simulator threads virtual timestamps explicitly through the
engines, spans do not read a clock: instrumentation code passes the
start time to :meth:`Tracer.span` and the end time to :meth:`Span.end`.
A span whose end was never set closes at the latest child end time.

Tracing is **disabled by default** and designed to cost nothing when
off: :meth:`Tracer.span` then returns a shared no-op span, no object is
allocated per call, and virtual-time accounting is untouched either way
(spans only *observe* timestamps the engines already compute).

Spans nest through an explicit stack kept by the tracer, which matches
the single-threaded structure of the virtual-time engines: ``with
tracer.span(...)`` pushes, exiting pops.  Concurrent *virtual* work
(e.g. branches evaluated in parallel) appears as sibling spans with
overlapping intervals; :attr:`Span.exclusive_ms` accounts for that by
subtracting the union of child intervals, not their sum.
"""

from __future__ import annotations

from typing import Any, Iterator


class Span:
    """One traced stage: a named virtual-time interval with attributes."""

    __slots__ = ("id", "parent_id", "name", "t0_ms", "t1_ms", "attrs", "children", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        t0_ms: float,
        attrs: dict[str, Any],
    ):
        self.id = span_id
        self.parent_id = parent_id
        self.name = name
        self.t0_ms = t0_ms
        self.t1_ms: float | None = None
        self.attrs = attrs
        self.children: list[Span] = []
        self._tracer = tracer

    # ------------------------------------------------------------- recording

    def set(self, **attrs: Any) -> "Span":
        """Attach or overwrite attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def end(self, t1_ms: float) -> "Span":
        """Close the span's virtual interval."""
        self.t1_ms = t1_ms
        return self

    # ----------------------------------------------------------- derived data

    @property
    def inclusive_ms(self) -> float:
        """Total virtual time covered by this span."""
        end = self.t1_ms if self.t1_ms is not None else self.t0_ms
        return max(0.0, end - self.t0_ms)

    @property
    def exclusive_ms(self) -> float:
        """Virtual time not covered by any child (children may overlap)."""
        end = self.t1_ms if self.t1_ms is not None else self.t0_ms
        intervals = sorted(
            (max(self.t0_ms, child.t0_ms), min(end, child.t1_ms or child.t0_ms))
            for child in self.children
        )
        covered = 0.0
        cursor = self.t0_ms
        for lo, hi in intervals:
            lo = max(lo, cursor)
            if hi > lo:
                covered += hi - lo
                cursor = hi
        return max(0.0, self.inclusive_ms - covered)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All descendants (and self) with the given name."""
        return [span for span in self.walk() if span.name == name]

    # -------------------------------------------------------- context manager

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.id}, t0={self.t0_ms:.2f}, "
            f"t1={self.t1_ms if self.t1_ms is None else round(self.t1_ms, 2)}, "
            f"attrs={self.attrs})"
        )


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    id = 0
    parent_id = None
    name = "<disabled>"
    t0_ms = 0.0
    t1_ms = 0.0
    attrs: dict[str, Any] = {}
    children: tuple = ()
    inclusive_ms = 0.0
    exclusive_ms = 0.0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def end(self, t1_ms: float) -> "_NullSpan":
        return self

    def walk(self):
        return iter(())

    def find(self, name: str) -> list:
        return []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()

SpanLike = Span | _NullSpan


class Tracer:
    """Builds the span tree; disabled (free) unless enabled explicitly."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------- switches

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop collected spans (open spans survive on the stack)."""
        self.roots = []

    # --------------------------------------------------------------- spans

    def span(self, name: str, t0: float | None = None, **attrs: Any) -> SpanLike:
        """Open a span at virtual time ``t0`` (defaults to the parent's start).

        Use as a context manager so the nesting stack unwinds on errors::

            with tracer.span("source_selection", t0=now) as sp:
                ...
                sp.set(requests=n).end(finish)
        """
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        if t0 is None:
            t0 = parent.t0_ms if parent is not None else 0.0
        span = Span(
            tracer=self,
            span_id=self._next_id,
            parent_id=parent.id if parent is not None else None,
            name=name,
            t0_ms=t0,
            attrs=dict(attrs),
        )
        self._next_id += 1
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _pop(self, span: Span) -> None:
        # Exiting out of order (an exception skipped inner __exit__ calls)
        # unwinds everything above the span as well.
        while self._stack:
            top = self._stack.pop()
            if top.t1_ms is None:
                child_end = max((c.t1_ms or c.t0_ms for c in top.children), default=top.t0_ms)
                top.t1_ms = max(top.t0_ms, child_end)
            if top is span:
                break

    def all_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()


#: Process-wide tracer every engine uses unless given its own.  Disabled
#: by default; ``repro profile`` and the ``--trace-out`` CLI flags enable
#: it for the duration of a run.
_DEFAULT_TRACER = Tracer(enabled=False)


def get_default_tracer() -> Tracer:
    return _DEFAULT_TRACER
