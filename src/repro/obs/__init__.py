"""Observability: span tracing, metrics registry, audit, profiling, exporters.

The instrumentation substrate of the reproduction (see
``docs/observability.md``).  Five pieces:

* :mod:`repro.obs.trace` — hierarchical virtual-time spans covering
  every stage of the query lifecycle; disabled by default, free when off.
* :mod:`repro.obs.registry` — labeled counters/histograms (with log2
  buckets and approximate percentiles) that the simulator, client,
  scheduler, and every engine report into.
* :mod:`repro.obs.audit` — estimate-vs-actual auditing: per-decision
  q-error histograms recorded wherever an estimate drives a choice.
* :mod:`repro.obs.profile` — post-hoc EXPLAIN ANALYZE: critical-path
  extraction, flamegraph exports, :class:`ProfileReport` artifacts.
* :mod:`repro.obs.export` — JSONL / Chrome trace sinks, JSON metrics
  snapshots, and the human-readable renderings behind
  ``python -m repro profile`` and ``explain-analyze``.
"""

from repro.obs.audit import (
    AUDIT_COUNTER,
    NULL_AUDIT,
    Q_ERROR_METRIC,
    AuditRecord,
    EstimateAudit,
    make_audit,
    q_error,
)
from repro.obs.export import (
    endpoint_summary_table,
    load_trace_jsonl,
    plan_cache_summary,
    render_span_tree,
    span_to_dict,
    validate_trace,
    write_folded_stacks,
    write_metrics_json,
    write_trace_chrome,
    write_trace_jsonl,
)
from repro.obs.profile import (
    ProfileReport,
    build_profile_report,
    chrome_trace_events,
    critical_path,
    critical_path_ids,
    critical_sections,
    folded_stacks,
    q_error_summary,
    render_explain_analyze,
    render_q_error_table,
)
from repro.obs.registry import HistogramStats, MetricsRegistry, get_default_registry
from repro.obs.trace import NULL_SPAN, Span, Tracer, get_default_tracer

__all__ = [
    "AUDIT_COUNTER",
    "AuditRecord",
    "EstimateAudit",
    "HistogramStats",
    "MetricsRegistry",
    "NULL_AUDIT",
    "NULL_SPAN",
    "ProfileReport",
    "Q_ERROR_METRIC",
    "Span",
    "Tracer",
    "build_profile_report",
    "chrome_trace_events",
    "critical_path",
    "critical_path_ids",
    "critical_sections",
    "endpoint_summary_table",
    "folded_stacks",
    "get_default_registry",
    "get_default_tracer",
    "load_trace_jsonl",
    "make_audit",
    "plan_cache_summary",
    "q_error",
    "q_error_summary",
    "render_explain_analyze",
    "render_q_error_table",
    "render_span_tree",
    "span_to_dict",
    "validate_trace",
    "write_folded_stacks",
    "write_metrics_json",
    "write_trace_chrome",
    "write_trace_jsonl",
]
