"""Observability: span tracing, metrics registry, exporters.

The instrumentation substrate of the reproduction (see
``docs/observability.md``).  Three pieces:

* :mod:`repro.obs.trace` — hierarchical virtual-time spans covering
  every stage of the query lifecycle; disabled by default, free when off.
* :mod:`repro.obs.registry` — labeled counters/histograms that the
  simulator, client, scheduler, and every engine report into.
* :mod:`repro.obs.export` — JSONL trace sink, JSON metrics snapshots,
  and the human-readable renderings behind ``python -m repro profile``.
"""

from repro.obs.export import (
    endpoint_summary_table,
    load_trace_jsonl,
    plan_cache_summary,
    render_span_tree,
    span_to_dict,
    validate_trace,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.obs.registry import HistogramStats, MetricsRegistry, get_default_registry
from repro.obs.trace import NULL_SPAN, Span, Tracer, get_default_tracer

__all__ = [
    "HistogramStats",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "endpoint_summary_table",
    "get_default_registry",
    "get_default_tracer",
    "load_trace_jsonl",
    "plan_cache_summary",
    "render_span_tree",
    "span_to_dict",
    "validate_trace",
    "write_metrics_json",
    "write_trace_jsonl",
]
