#!/usr/bin/env bash
# Verify entrypoint: tier-1 test suite plus an observability smoke check.
#
#   ./scripts/check.sh
#
# 0. lints with ruff when it is installed (config in pyproject.toml);
# 1. runs the full pytest suite (the repo's tier-1 gate, see ROADMAP.md);
# 2. runs a LUBM query with tracing enabled and asserts the exported
#    JSONL trace parses and its span tree is well-formed
#    (scripts/trace_smoke.py);
# 3. smoke-runs the data-plane micro-benchmark at tiny scale and asserts
#    BENCH_micro.json / BENCH_join.json / BENCH_plan.json /
#    BENCH_store.json / BENCH_partial.json are produced and well-formed,
#    runs a dictionary round-trip check, re-runs the columnar join,
#    compiled-plan and array-substrate suites as perf-regression gates
#    against the checked-in BENCH_join.json / BENCH_plan.json /
#    BENCH_store.json — including the merge-beats-hash and
#    >=1e5-triple scale gates — and audits the committed
#    BENCH_plan.json metadata workload and BENCH_partial.json
#    partial-evaluation workload (>=2x intermediate-row reduction on
#    crossing-heavy queries, one partial round per endpoint,
#    row-identical answers, auto picker within 10% of the better fixed
#    strategy, fragment plan-cache sharing)
#    (scripts/microbench_smoke.py);
# 4. runs one LUBM query under the seeded transient-fault profile and
#    asserts the retry layer recovers deterministically
#    (scripts/chaos_smoke.py);
# 5. profiles one LUBM query per engine with the estimate audit on and
#    gates the resulting ProfileReports (status, request counts, rows
#    shipped, worst q-error) against the committed BENCH_profile.json
#    (scripts/profile_smoke.py);
# 6. replays a seeded 10^5-request Zipfian traffic mix through the
#    concurrent serving layer twice, asserts the two reports are
#    byte-identical, every result matches serial execution, throughput
#    is >=2x the one-at-a-time baseline, and gates the counters and
#    timings against the committed BENCH_serve.json
#    (scripts/serve_smoke.py).
set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH=src

if command -v ruff >/dev/null 2>&1; then
  echo "== lint: ruff =="
  ruff check src tests benchmarks scripts
  ruff format --check src tests benchmarks scripts
else
  echo "== lint: ruff not installed, skipping =="
fi

echo "== tier-1: pytest =="
python -m pytest -x -q

echo "== trace round-trip smoke =="
python scripts/trace_smoke.py

echo "== microbench + dictionary smoke =="
python scripts/microbench_smoke.py

echo "== seeded chaos smoke =="
python scripts/chaos_smoke.py

echo "== explain-analyze profile gate =="
python scripts/profile_smoke.py

echo "== concurrent serving gate =="
python scripts/serve_smoke.py

echo "check.sh: all green"
