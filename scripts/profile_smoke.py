#!/usr/bin/env python
"""EXPLAIN ANALYZE smoke + profile regression gate (see scripts/check.sh).

Profiles one LUBM query per engine with tracing enabled and asserts:

* the ProfileReport round-trips through JSON;
* every engine recorded at least one per-decision q-error series (the
  estimate audit is alive for Lusail *and* the baselines);
* the critical path covers the root span — it starts at the root and
  its per-span self times sum to the root's inclusive virtual time;
* **structural regression gate**: per (engine, query), status / request
  count / rows shipped / result rows / metadata requests must match the
  committed ``BENCH_profile.json`` exactly and the worst q-error must stay within
  tolerance.  The simulator is deterministic, so any drift means a
  planner, estimator, or audit change — review it, then regenerate the
  baseline with ``python scripts/profile_smoke.py --write-baseline``.

Exits non-zero on any problem; prints a one-line summary otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.datasets import lubm
from repro.harness import ENGINE_ORDER, profile_query, write_profile_reports

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "BENCH_profile.json"
QUERY = "Q4"
#: Relative drift allowed on each report's worst q-error before the
#: gate trips (the structural counters are compared exactly).
Q_ERROR_TOLERANCE = 0.05


def build_runs():
    federation = lubm.build_federation(2, profile=lubm.TINY_PROFILE, seed=42)
    query_text = lubm.queries()[QUERY]
    return [
        profile_query(engine, federation, QUERY, query_text)
        for engine in ENGINE_ORDER
    ]


def check_run(run, problems: list[str]) -> None:
    report = run.report
    label = f"{report.engine}/{report.query}"
    try:
        decoded = json.loads(json.dumps(report.to_dict()))
    except (TypeError, ValueError) as exc:
        problems.append(f"{label}: report not JSON-serializable: {exc}")
        return
    if decoded != report.to_dict():
        problems.append(f"{label}: report JSON round-trip mismatch")
    if report.status != "ok":
        problems.append(f"{label}: query failed with status {report.status}")
    if not report.q_error:
        problems.append(f"{label}: no q-error series recorded by the estimate audit")
    if run.root is None:
        problems.append(f"{label}: tracer produced no root span")
        return
    if not report.critical_path:
        problems.append(f"{label}: empty critical path")
        return
    first = report.critical_path[0]
    if first["name"] != run.root.name or abs(first["t0_ms"] - run.root.t0_ms) > 1e-6:
        problems.append(f"{label}: critical path does not start at the root span")
    inclusive = run.root.inclusive_ms
    if inclusive > 0 and abs(report.critical_path_ms - inclusive) / inclusive > 1e-6:
        problems.append(
            f"{label}: critical path {report.critical_path_ms:.3f}ms does not "
            f"cover the root span's {inclusive:.3f}ms"
        )


def gate(reports, problems: list[str]) -> None:
    if not BASELINE.exists():
        problems.append(
            "BENCH_profile.json baseline missing from repo root "
            "(generate with --write-baseline)"
        )
        return
    baseline = {
        (entry["engine"], entry["query"]): entry
        for entry in json.loads(BASELINE.read_text())["reports"]
    }
    for report in reports:
        label = f"{report.engine}/{report.query}"
        base = baseline.get((report.engine, report.query))
        if base is None:
            problems.append(f"{label}: missing from BENCH_profile.json")
            continue
        for name in ("status", "requests", "rows_shipped", "result_rows", "metadata_requests"):
            current = getattr(report, name)
            if current != base[name]:
                problems.append(
                    f"{label}: {name} {current!r} != baseline {base[name]!r}"
                )
        worst = report.worst_q_error
        base_worst = base["worst_q_error"]
        lo = base_worst / (1.0 + Q_ERROR_TOLERANCE) - 1e-9
        hi = base_worst * (1.0 + Q_ERROR_TOLERANCE) + 1e-9
        if not lo <= worst <= hi:
            problems.append(
                f"{label}: worst q-error {worst:.3f} drifted from baseline "
                f"{base_worst:.3f} (±{Q_ERROR_TOLERANCE:.0%} allowed)"
            )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate BENCH_profile.json instead of gating against it",
    )
    args = parser.parse_args()

    runs = build_runs()
    reports = [run.report for run in runs]

    if args.write_baseline:
        write_profile_reports(reports, str(BASELINE))
        print(f"profile smoke: wrote baseline {BASELINE} ({len(reports)} reports)")
        return 0

    problems: list[str] = []
    for run in runs:
        check_run(run, problems)
    gate(reports, problems)

    if problems:
        for problem in problems:
            print(f"profile smoke: {problem}", file=sys.stderr)
        return 1
    decisions = sorted({d for report in reports for d in report.q_error})
    print(
        f"profile smoke: ok ({len(reports)} reports on {QUERY}; "
        f"audited decisions: {', '.join(decisions)})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
