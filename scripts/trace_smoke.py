#!/usr/bin/env python
"""Trace round-trip smoke check (see ``scripts/check.sh``).

Runs a LUBM query with tracing enabled, writes the trace as JSONL,
reads it back, and asserts that it parses and forms a well-formed span
tree (unique ids, parents precede children, children contained in
parent intervals, exactly one root per query) whose root inclusive
time matches the query's reported virtual time.

Exits non-zero on any problem; prints a one-line summary otherwise.
"""

from __future__ import annotations

import sys
import tempfile

from repro.datasets import lubm
from repro.harness import make_engines
from repro.obs import MetricsRegistry, Tracer, load_trace_jsonl, validate_trace


def main() -> int:
    federation = lubm.build_federation(2, profile=lubm.TINY_PROFILE, seed=42)
    tracer = Tracer(enabled=True)
    registry = MetricsRegistry()
    engines = make_engines(
        federation, which=("Lusail",), tracer=tracer, registry=registry
    )
    outcome = engines["Lusail"].execute(lubm.queries()["Q4"])
    if not outcome.ok:
        print(f"trace smoke: query failed with status {outcome.status}", file=sys.stderr)
        return 1

    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as handle:
        path = handle.name
    from repro.obs import write_trace_jsonl

    written = write_trace_jsonl(tracer.roots, path)
    spans = load_trace_jsonl(path)
    problems = validate_trace(spans)

    if written == 0:
        problems.append("no spans written")
    if len(spans) != written:
        problems.append(f"wrote {written} spans but read back {len(spans)}")

    roots = [span for span in spans if span["parent_id"] is None]
    if len(roots) != 1:
        problems.append(f"expected exactly one root span, found {len(roots)}")
    else:
        root = roots[0]
        reported = outcome.metrics.virtual_ms
        inclusive = root["t1_ms"] - root["t0_ms"]
        if reported > 0 and abs(inclusive - reported) / reported > 0.01:
            problems.append(
                f"root inclusive {inclusive:.3f}ms != reported {reported:.3f}ms"
            )

    if registry.counter_value("requests_total", engine="Lusail") == 0:
        problems.append("registry recorded no requests for the traced query")

    if problems:
        for problem in problems:
            print(f"trace smoke: {problem}", file=sys.stderr)
        return 1
    print(
        f"trace smoke: ok ({len(spans)} spans, root "
        f"{roots[0]['t1_ms'] - roots[0]['t0_ms']:.2f}ms virtual)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
