"""End-to-end smoke check: the paper's running example (Fig 1/2, query Qa)."""

from repro.endpoint import Endpoint, Federation
from repro.core.engine import LusailEngine
from repro.rdf import IRI, Literal, Namespace, Triple, UB
from repro.sparql import evaluate_select, parse_query

MIT = Namespace("http://mit.example.org/")
CMU = Namespace("http://cmu.example.org/")


def triple(s, p, o):
    return Triple(s, p, o)


ep1 = Endpoint("EP1")  # MIT
ep1.add_all(
    [
        triple(MIT.Lee, UB.advisor, MIT.Ben),
        triple(MIT.Lee, UB.takesCourse, MIT.c1),
        triple(MIT.Ben, UB.teacherOf, MIT.c1),
        triple(MIT.Ben, UB.PhDDegreeFrom, MIT.MIT),
        triple(MIT.MIT, UB.address, Literal("XXX")),
        # Ann: advisor with no course yet -> the paper's ?P false positive.
        triple(MIT.Sam, UB.advisor, MIT.Ann),
        triple(MIT.Sam, UB.takesCourse, MIT.c1),
        triple(MIT.Ann, UB.PhDDegreeFrom, MIT.MIT),
    ]
)

ep2 = Endpoint("EP2")  # CMU
ep2.add_all(
    [
        triple(CMU.Kim, UB.advisor, CMU.Joy),
        triple(CMU.Kim, UB.takesCourse, CMU.c2),
        triple(CMU.Joy, UB.teacherOf, CMU.c2),
        triple(CMU.Joy, UB.PhDDegreeFrom, CMU.CMU),
        triple(CMU.CMU, UB.address, Literal("CCCC")),
        triple(CMU.Kim, UB.advisor, CMU.Tim),
        triple(CMU.Kim, UB.takesCourse, CMU.c3),
        triple(CMU.Tim, UB.teacherOf, CMU.c3),
        # Interlink: Tim's PhD is from MIT, described at EP1.
        triple(CMU.Tim, UB.PhDDegreeFrom, MIT.MIT),
    ]
)

federation = Federation([ep1, ep2])

QA = """
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?S ?P ?U ?A WHERE {
  ?S ub:advisor ?P .
  ?S ub:takesCourse ?C .
  ?P ub:teacherOf ?C .
  ?P ub:PhDDegreeFrom ?U .
  ?U ub:address ?A .
}
"""

engine = LusailEngine(federation)
outcome = engine.execute(QA)
print("status:", outcome.status)
print("rows:", sorted((r[0].local_name, r[1].local_name, r[2].local_name, r[3].value) for r in outcome.result))
print("GJVs:", engine.last_plan.gjv_names)
print("subqueries:", engine.last_plan.subquery_count, "delayed:", engine.last_plan.delayed_count)
print("requests:", outcome.metrics.requests_by_kind())
print("virtual_ms:", round(outcome.metrics.virtual_ms, 2))
print("phases:", {k: round(v, 2) for k, v in outcome.metrics.phase_ms.items()})

# Oracle: centralized evaluation over the union graph.
union = federation.union_store()
oracle = evaluate_select(union, parse_query(QA))
assert outcome.result.as_set() == oracle.as_set(), (
    sorted(outcome.result.as_set()), sorted(oracle.as_set()))
print("oracle match: OK  (", len(oracle), "rows )")
