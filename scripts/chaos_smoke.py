#!/usr/bin/env python
"""Seeded chaos smoke check (see ``scripts/check.sh``).

Runs one LUBM query with Lusail under the ``transient`` fault profile
with retries enabled, and asserts that (1) faults were actually
injected, (2) the retry layer recovered and the query succeeded, and
(3) a second run under the same ``(seed, plan)`` reproduces the exact
same virtual time and retry count — the determinism contract of
``repro.faults``.

Exits non-zero on any problem; prints a one-line summary otherwise.
"""

from __future__ import annotations

import sys

from repro.datasets import lubm
from repro.faults import default_chaos_policy, fault_profile
from repro.harness import make_engines
from repro.obs import MetricsRegistry


def run_once(seed: int):
    federation = lubm.build_federation(2, profile=lubm.TINY_PROFILE, seed=42)
    registry = MetricsRegistry()
    engines = make_engines(
        federation,
        which=("Lusail",),
        registry=registry,
        fault_plan=fault_profile("transient", seed=seed),
        resilience=default_chaos_policy(seed),
    )
    outcome = engines["Lusail"].execute(lubm.queries()["Q4"])
    return outcome, registry


def main() -> int:
    problems: list[str] = []
    outcome, registry = run_once(seed=0)
    metrics = outcome.metrics

    if not outcome.ok:
        problems.append(f"query failed under transient faults: {outcome.status}")
    if registry.counter_value("faults_injected_total") == 0:
        problems.append("no faults injected (profile not applied?)")
    if metrics.retries == 0:
        problems.append("query succeeded without retries (faults not surfacing?)")
    if metrics.failed_request_count() != metrics.retries:
        problems.append(
            f"every failed request should be retried exactly once here: "
            f"{metrics.failed_request_count()} failures vs {metrics.retries} retries"
        )
    if not outcome.complete:
        problems.append("no endpoint was dropped, yet completeness is partial")

    repeat, __ = run_once(seed=0)
    if repeat.metrics.virtual_ms != metrics.virtual_ms:
        problems.append(
            f"same (seed, plan) gave different virtual times: "
            f"{metrics.virtual_ms} vs {repeat.metrics.virtual_ms}"
        )
    if repeat.metrics.retries != metrics.retries:
        problems.append("same (seed, plan) gave different retry counts")

    if problems:
        for problem in problems:
            print(f"chaos smoke: {problem}", file=sys.stderr)
        return 1

    print(
        f"chaos smoke: ok — Q4 recovered from "
        f"{metrics.failed_request_count()} injected faults with "
        f"{metrics.retries} retries, {metrics.virtual_ms:.1f} virtual ms "
        f"(reproducible)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
