"""Smoke checks for the encoded data plane, run by scripts/check.sh.

1. Dictionary round-trip: every term in a generated LUBM endpoint
   encodes to a unique dense id and decodes back to an equal term.
2. Micro-benchmark plumbing: ``benchmarks/bench_microperf.py --smoke``
   runs at tiny scale and emits a well-formed BENCH_micro.json (each
   bench internally asserts encoded results equal the term-space
   reference results, so this also cross-checks correctness).
3. Columnar join regression gate: ``bench_microperf.py --gate`` re-runs
   the columnar join suite at the committed BENCH_join.json's scale and
   fails if any bench's columnar-vs-row speedup falls below an absolute
   floor or drops far below the checked-in baseline.  Speedups are
   in-run ratios on identical data, so the gate is machine-tolerant.
4. Compiled-plan regression gate: same mechanism over the compiled plan
   suite (BENCH_plan.json) — cached-plan bound-join execution must stay
   at least twice as fast as per-request interpretive planning.
5. Array-substrate regression gate: same mechanism over the store suite
   (BENCH_store.json) — the merge kernel must beat the hash kernel on
   sorted inputs, both store backends must agree on every probe, and the
   ≥10⁵-triple scale gate must complete with the sorted backend building
   faster than the dict backend.
6. Metadata-workload gate: the committed BENCH_plan.json workload
   section must show the charset statistics cutting planner metadata
   requests ≥5x with row-identical answers and summary estimates within
   2x q-error of exact local counts, and COUNT-probe skeleton collapse
   holding the ``count`` plan-cache hit rate ≥0.75.
7. Partial-evaluation gate: the committed BENCH_partial.json workload
   must show the digest-pruned partial round shipping ≥2x fewer
   intermediate rows than the bound-join ladder on the crossing-heavy
   LUBM queries, exactly one ``partial`` round per participating
   endpoint, row-identical answers across strategies, the auto picker
   within 10% of the better fixed strategy in warm virtual time, and
   fragment canonicalization holding the ``partial``-kind plan-cache
   hit rate ≥0.7 over constant-varied fragments.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def check_dictionary_round_trip() -> None:
    from repro.datasets import lubm
    from repro.store import TripleStore

    store = TripleStore()
    store.add_all(lubm.generate_university(0, 1))
    dictionary = store.dictionary
    assert len(dictionary) > 0, "dictionary is empty after load"
    seen_ids = set()
    for term in dictionary:
        term_id = dictionary.lookup(term)
        assert term_id is not None, f"interned term has no id: {term!r}"
        assert term_id not in seen_ids, f"duplicate id {term_id}"
        seen_ids.add(term_id)
        assert dictionary.decode(term_id) == term, f"round-trip failed: {term!r}"
    assert seen_ids == set(range(len(dictionary))), "ids are not dense"
    print(f"dictionary round-trip ok ({len(dictionary)} terms)")


def check_microbench_smoke() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "BENCH_micro.json"
        join_out = Path(tmp) / "BENCH_join.json"
        plan_out = Path(tmp) / "BENCH_plan.json"
        store_out = Path(tmp) / "BENCH_store.json"
        partial_out = Path(tmp) / "BENCH_partial.json"
        subprocess.run(
            [
                sys.executable, "benchmarks/bench_microperf.py", "--smoke",
                "--out", str(out), "--join-out", str(join_out),
                "--plan-out", str(plan_out), "--store-out", str(store_out),
                "--partial-out", str(partial_out),
            ],
            cwd=REPO,
            check=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        report = json.loads(out.read_text())
        join_report = json.loads(join_out.read_text())
        plan_report = json.loads(plan_out.read_text())
        store_report = json.loads(store_out.read_text())
        partial_report = json.loads(partial_out.read_text())
    assert set(report) == {"meta", "benches"}, f"unexpected keys: {set(report)}"
    expected = {"bgp_join", "mediator_join", "values_subquery"}
    assert set(report["benches"]) == expected, f"missing benches: {report['benches']}"
    join_expected = {"mediator_join", "mediator_join_big", "bound_join_blocks"}
    assert set(join_report["benches"]) == join_expected, (
        f"missing join benches: {join_report['benches']}"
    )
    assert set(plan_report) == {"meta", "benches", "workload"}, (
        f"unexpected plan keys: {set(plan_report)}"
    )
    plan_expected = {"bound_join_reuse", "cached_execute"}
    assert set(plan_report["benches"]) == plan_expected, (
        f"missing plan benches: {plan_report['benches']}"
    )
    assert set(store_report) == {"meta", "benches", "scale_gate"}, (
        f"unexpected store keys: {set(store_report)}"
    )
    store_expected = {"store_build", "store_probe", "merge_join_sorted"}
    assert set(store_report["benches"]) == store_expected, (
        f"missing store benches: {store_report['benches']}"
    )
    for benches in (
        report["benches"],
        join_report["benches"],
        plan_report["benches"],
        store_report["benches"],
    ):
        for name, bench in benches.items():
            for field in ("before_s", "after_s", "speedup"):
                value = bench.get(field)
                assert isinstance(value, (int, float)) and value > 0, (
                    f"{name}.{field} malformed: {value!r}"
                )
    build = store_report["benches"]["store_build"]
    for field in ("peak_bytes_dict", "peak_bytes_sorted", "bytes_per_triple_sorted"):
        value = build.get(field)
        assert isinstance(value, (int, float)) and value > 0, (
            f"store_build.{field} malformed: {value!r}"
        )
    scale_gate = store_report["scale_gate"]
    for field in ("triples", "build_s", "query_s", "bytes_per_triple"):
        assert field in scale_gate, f"store scale_gate missing {field}"
    workload = plan_report["workload"]
    for field in ("plan_cache_hits", "plan_cache_misses", "hit_rate"):
        assert field in workload, f"plan workload missing {field}"
    metadata = workload.get("metadata")
    assert metadata, "plan workload missing metadata section"
    for field in ("requests_per_query", "reduction", "stats_q_error_max", "rows_identical"):
        assert field in metadata, f"metadata workload missing {field}"
    assert metadata["rows_identical"] is True, "statistics changed smoke answers"
    partial = partial_report["workload"]
    assert partial.get("queries"), "partial workload missing per-query section"
    for query_name, entry in partial["queries"].items():
        for field in (
            "bound_intermediate_rows", "partial_intermediate_rows", "reduction",
            "virtual_ms", "rounds_per_endpoint", "rows_identical", "crossing_heavy",
            "auto_vs_best",
        ):
            assert field in entry, f"partial workload {query_name} missing {field}"
        assert entry["rows_identical"] is True, (
            f"partial workload {query_name}: strategies disagreed in smoke run"
        )
        assert entry["rounds_per_endpoint"] == 1, (
            f"partial workload {query_name}: multiple partial rounds per endpoint"
        )
    sharing = partial.get("fragment_plan_cache")
    assert sharing and "hit_rate" in sharing, (
        "partial workload missing fragment_plan_cache section"
    )
    print(
        "microbench smoke ok (BENCH_micro.json / BENCH_join.json / "
        "BENCH_plan.json / BENCH_store.json / BENCH_partial.json well-formed)"
    )


#: Absolute speedup floors for the columnar join suite.  mediator_join's
#: 2.0 is the PR acceptance criterion: the columnar kernels must stay at
#: least twice as fast as the preserved row runtime on that workload.
_GATE_FLOORS = {
    "mediator_join": 2.0,
    "mediator_join_big": 2.0,
    "bound_join_blocks": 1.5,
}
#: A gate run may be this much slower (relative) than the committed
#: baseline before it counts as a regression; in-run speedup ratios are
#: stable, so most genuine regressions blow straight through this.
_GATE_TOLERANCE = 0.35


def check_join_regression() -> None:
    baseline_path = REPO / "BENCH_join.json"
    assert baseline_path.exists(), "BENCH_join.json baseline missing from repo root"
    baseline = json.loads(baseline_path.read_text())["benches"]
    with tempfile.TemporaryDirectory() as tmp:
        join_out = Path(tmp) / "BENCH_join.json"
        subprocess.run(
            [
                sys.executable, "benchmarks/bench_microperf.py", "--gate",
                "--join-out", str(join_out),
                "--plan-out", str(Path(tmp) / "BENCH_plan.json"),
                "--store-out", str(Path(tmp) / "BENCH_store.json"),
            ],
            cwd=REPO,
            check=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        gate = json.loads(join_out.read_text())["benches"]
    assert set(gate) == set(_GATE_FLOORS), f"gate benches changed: {set(gate)}"
    for name, floor in _GATE_FLOORS.items():
        speedup = gate[name]["speedup"]
        required = floor
        base = baseline.get(name, {}).get("speedup")
        if base:
            required = max(required, base * _GATE_TOLERANCE)
        assert speedup >= required, (
            f"join perf regression: {name} speedup {speedup:.2f}x fell below "
            f"{required:.2f}x (baseline {base and f'{base:.2f}x'}, floor {floor}x)"
        )
        print(f"join gate: {name} {speedup:.2f}x >= {required:.2f}x ok")


#: Absolute speedup floors for the compiled plan suite.
#: bound_join_reuse's 2.0 is the PR acceptance criterion: re-executing a
#: cached plan on new VALUES blocks must stay at least twice as fast as
#: per-request interpretive planning.  cached_execute's floor only
#: asserts that compilation is not free (cold > cached).
_PLAN_GATE_FLOORS = {
    "bound_join_reuse": 2.0,
    "cached_execute": 1.2,
}


def check_plan_regression() -> None:
    baseline_path = REPO / "BENCH_plan.json"
    assert baseline_path.exists(), "BENCH_plan.json baseline missing from repo root"
    baseline = json.loads(baseline_path.read_text())["benches"]
    with tempfile.TemporaryDirectory() as tmp:
        plan_out = Path(tmp) / "BENCH_plan.json"
        subprocess.run(
            [
                sys.executable, "benchmarks/bench_microperf.py", "--gate",
                "--join-out", str(Path(tmp) / "BENCH_join.json"),
                "--plan-out", str(plan_out),
                "--store-out", str(Path(tmp) / "BENCH_store.json"),
            ],
            cwd=REPO,
            check=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        gate = json.loads(plan_out.read_text())["benches"]
    assert set(gate) == set(_PLAN_GATE_FLOORS), f"plan gate benches changed: {set(gate)}"
    for name, floor in _PLAN_GATE_FLOORS.items():
        speedup = gate[name]["speedup"]
        required = floor
        base = baseline.get(name, {}).get("speedup")
        if base:
            required = max(required, base * _GATE_TOLERANCE)
        assert speedup >= required, (
            f"plan perf regression: {name} speedup {speedup:.2f}x fell below "
            f"{required:.2f}x (baseline {base and f'{base:.2f}x'}, floor {floor}x)"
        )
        print(f"plan gate: {name} {speedup:.2f}x >= {required:.2f}x ok")


#: Absolute speedup floors for the array-substrate store suite.
#: merge_join_sorted's 1.0 is the PR acceptance criterion: the merge
#: kernel must beat the hash kernel on already-sorted inputs.  The build
#: and probe benches run at micro scale where the backends sit near
#: parity (the sorted backend's bulk-load advantage shows at the ≥10⁵
#: scale gate), so their floors only catch real regressions.
_STORE_GATE_FLOORS = {
    "store_build": 0.4,
    "store_probe": 0.6,
    "merge_join_sorted": 1.0,
}


def check_store_regression() -> None:
    baseline_path = REPO / "BENCH_store.json"
    assert baseline_path.exists(), "BENCH_store.json baseline missing from repo root"
    baseline = json.loads(baseline_path.read_text())["benches"]
    with tempfile.TemporaryDirectory() as tmp:
        store_out = Path(tmp) / "BENCH_store.json"
        subprocess.run(
            [
                sys.executable, "benchmarks/bench_microperf.py", "--gate",
                "--join-out", str(Path(tmp) / "BENCH_join.json"),
                "--plan-out", str(Path(tmp) / "BENCH_plan.json"),
                "--store-out", str(store_out),
            ],
            cwd=REPO,
            check=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        report = json.loads(store_out.read_text())
    gate = report["benches"]
    assert set(gate) == set(_STORE_GATE_FLOORS), f"store gate benches changed: {set(gate)}"
    for name, floor in _STORE_GATE_FLOORS.items():
        speedup = gate[name]["speedup"]
        required = floor
        base = baseline.get(name, {}).get("speedup")
        if base:
            required = max(required, base * _GATE_TOLERANCE)
        assert speedup >= required, (
            f"store perf regression: {name} speedup {speedup:.2f}x fell below "
            f"{required:.2f}x (baseline {base and f'{base:.2f}x'}, floor {floor}x)"
        )
        print(f"store gate: {name} {speedup:.2f}x >= {required:.2f}x ok")
    scale_gate = report["scale_gate"]
    assert scale_gate["met_100k"], (
        f"scale gate below 1e5 triples: {scale_gate['triples']}"
    )
    assert scale_gate["query_rows"] > 0, "scale-gate compiled query returned no rows"
    # Floor 1.05: at 1e5+ triples the columnar bulk load must at least
    # hold its small edge over dict-of-sets insertion (typically
    # 1.2-1.35x with the cyclic GC on; the margin narrows under load,
    # so the floor only guards against losing outright).
    assert scale_gate["build_speedup"] >= 1.05, (
        f"sorted bulk load lost its large-scale advantage: "
        f"{scale_gate['build_speedup']:.2f}x vs dict"
    )
    print(
        f"store gate: scale {scale_gate['triples']} triples, "
        f"bulk load {scale_gate['build_speedup']:.2f}x vs dict ok"
    )


#: Acceptance bars for the committed BENCH_plan.json workload section.
#: The workload only runs in full (non-gate) benchmark mode, so this
#: gate audits the checked-in baseline rather than re-running it: a full
#: ``bench_microperf.py`` run must have produced numbers clearing the
#: issue's acceptance criteria before the baseline was committed.
_METADATA_REDUCTION_FLOOR = 5.0
_STATS_Q_ERROR_CEILING = 2.0
_COUNT_HIT_RATE_FLOOR = 0.75


def check_metadata_workload_baseline() -> None:
    baseline_path = REPO / "BENCH_plan.json"
    assert baseline_path.exists(), "BENCH_plan.json baseline missing from repo root"
    workload = json.loads(baseline_path.read_text())["workload"]
    count_rate = workload["by_kind"]["count"]["hit_rate"]
    assert count_rate >= _COUNT_HIT_RATE_FLOOR, (
        f"COUNT-probe skeleton collapse regressed: count plan-cache hit rate "
        f"{count_rate:.3f} < {_COUNT_HIT_RATE_FLOOR}"
    )
    metadata = workload["metadata"]
    assert metadata["rows_identical"] is True, (
        "baseline recorded answer divergence between stats and probe paths"
    )
    reduction = metadata["reduction"]
    assert reduction >= _METADATA_REDUCTION_FLOOR, (
        f"charset statistics no longer cut metadata traffic: "
        f"{reduction:.1f}x < {_METADATA_REDUCTION_FLOOR}x"
    )
    q_error = metadata["stats_q_error_max"]
    assert q_error <= _STATS_Q_ERROR_CEILING, (
        f"summary estimates drifted: stats q-error {q_error:.2f} > "
        f"{_STATS_Q_ERROR_CEILING}"
    )
    print(
        f"metadata gate: {reduction:.1f}x fewer requests/query, "
        f"stats q-error {q_error:.2f}, count hit rate {count_rate:.3f} ok"
    )


#: Acceptance bars for the committed BENCH_partial.json workload.  Like
#: the metadata gate, the partial workload only runs in full benchmark
#: mode, so this audits the checked-in baseline: a full
#: ``bench_microperf.py`` run must have cleared the issue's acceptance
#: criteria before the baseline was committed.
_PARTIAL_REDUCTION_FLOOR = 2.0
_AUTO_OVERHEAD_CEILING = 1.1
_FRAGMENT_HIT_RATE_FLOOR = 0.7


def check_partial_baseline() -> None:
    baseline_path = REPO / "BENCH_partial.json"
    assert baseline_path.exists(), "BENCH_partial.json baseline missing from repo root"
    workload = json.loads(baseline_path.read_text())["workload"]
    heavy = []
    for query_name, entry in workload["queries"].items():
        assert entry["rows_identical"] is True, (
            f"partial baseline {query_name}: strategies disagreed on the answer"
        )
        assert entry["rounds_per_endpoint"] == 1, (
            f"partial baseline {query_name}: partial evaluation took "
            f"{entry['rounds_per_endpoint']} rounds per endpoint (expected 1)"
        )
        auto_ratio = entry["auto_vs_best"]
        assert auto_ratio <= _AUTO_OVERHEAD_CEILING, (
            f"partial baseline {query_name}: auto picker {auto_ratio:.2f}x slower "
            f"than the better fixed strategy (> {_AUTO_OVERHEAD_CEILING}x)"
        )
        if entry["crossing_heavy"]:
            heavy.append(query_name)
            reduction = entry["reduction"]
            assert reduction >= _PARTIAL_REDUCTION_FLOOR, (
                f"partial baseline {query_name}: intermediate-row reduction "
                f"{reduction:.2f}x < {_PARTIAL_REDUCTION_FLOOR}x"
            )
    assert heavy, "partial baseline has no crossing-heavy queries"
    hit_rate = workload["fragment_plan_cache"]["hit_rate"]
    assert hit_rate >= _FRAGMENT_HIT_RATE_FLOOR, (
        f"fragment canonicalization regressed: partial-kind plan-cache hit rate "
        f"{hit_rate:.3f} < {_FRAGMENT_HIT_RATE_FLOOR}"
    )
    reductions = ", ".join(
        f"{name} {workload['queries'][name]['reduction']:.2f}x" for name in heavy
    )
    print(
        f"partial gate: intermediate rows cut {reductions}, one round/endpoint, "
        f"fragment plan-cache hit rate {hit_rate:.3f} ok"
    )


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    check_dictionary_round_trip()
    check_microbench_smoke()
    check_join_regression()
    check_plan_regression()
    check_store_regression()
    check_metadata_workload_baseline()
    check_partial_baseline()
    return 0


if __name__ == "__main__":
    sys.exit(main())
