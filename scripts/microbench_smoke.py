"""Smoke checks for the encoded data plane, run by scripts/check.sh.

1. Dictionary round-trip: every term in a generated LUBM endpoint
   encodes to a unique dense id and decodes back to an equal term.
2. Micro-benchmark plumbing: ``benchmarks/bench_microperf.py --smoke``
   runs at tiny scale and emits a well-formed BENCH_micro.json (each
   bench internally asserts encoded results equal the term-space
   reference results, so this also cross-checks correctness).
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def check_dictionary_round_trip() -> None:
    from repro.datasets import lubm
    from repro.store import TripleStore

    store = TripleStore()
    store.add_all(lubm.generate_university(0, 1))
    dictionary = store.dictionary
    assert len(dictionary) > 0, "dictionary is empty after load"
    seen_ids = set()
    for term in dictionary:
        term_id = dictionary.lookup(term)
        assert term_id is not None, f"interned term has no id: {term!r}"
        assert term_id not in seen_ids, f"duplicate id {term_id}"
        seen_ids.add(term_id)
        assert dictionary.decode(term_id) == term, f"round-trip failed: {term!r}"
    assert seen_ids == set(range(len(dictionary))), "ids are not dense"
    print(f"dictionary round-trip ok ({len(dictionary)} terms)")


def check_microbench_smoke() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "BENCH_micro.json"
        subprocess.run(
            [sys.executable, "benchmarks/bench_microperf.py", "--smoke", "--out", str(out)],
            cwd=REPO,
            check=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        report = json.loads(out.read_text())
    assert set(report) == {"meta", "benches"}, f"unexpected keys: {set(report)}"
    expected = {"bgp_join", "mediator_join", "values_subquery"}
    assert set(report["benches"]) == expected, f"missing benches: {report['benches']}"
    for name, bench in report["benches"].items():
        for field in ("before_s", "after_s", "speedup"):
            value = bench.get(field)
            assert isinstance(value, (int, float)) and value > 0, (
                f"{name}.{field} malformed: {value!r}"
            )
    print("microbench smoke ok (BENCH_micro.json well-formed)")


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    check_dictionary_round_trip()
    check_microbench_smoke()
    return 0


if __name__ == "__main__":
    sys.exit(main())
