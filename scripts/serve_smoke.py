#!/usr/bin/env python
"""Serving-layer smoke + regression gate (see scripts/check.sh).

Replays a seeded 10⁵-request Zipfian LUBM traffic mix through the
concurrent serving layer (:mod:`repro.serve`) twice, from two freshly
built federations and servers, and asserts:

* **bit-identical replay**: the two runs' canonical report JSON match
  byte for byte — concurrency in virtual time must not leak real-world
  nondeterminism;
* **serial identity**: every served result is row-identical to executing
  that query alone on a serial engine (the sharing layers cannot change
  answers);
* **speedup floor**: concurrent throughput with the result cache and
  cross-query MQO on is at least 2x the one-at-a-time serial baseline;
* **regression gate**: counters (completed, per-path counts, cache and
  MQO statistics) must match the committed ``BENCH_serve.json`` exactly,
  and throughput / makespan / latency percentiles must stay within
  tolerance.  Any drift means a scheduler, cache, or simulator change —
  review it, then regenerate with
  ``python scripts/serve_smoke.py --write-baseline``.

Exits non-zero on any problem; prints a one-line summary otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.datasets import lubm
from repro.harness.traffic import TrafficConfig, run_traffic, workload_queries

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "BENCH_serve.json"
REQUESTS = 100_000
SPEEDUP_FLOOR = 2.0
#: Relative drift allowed on timing-derived floats (counters are exact).
FLOAT_TOLERANCE = 0.02

#: (section, key) pairs compared exactly against the baseline.
EXACT_GATES = [
    ("totals", "completed"),
    ("totals", "failed"),
    ("paths", "cache"),
    ("paths", "attach"),
    ("paths", "executed"),
    ("cache", "hits"),
    ("cache", "misses"),
    ("cache", "invalidations"),
    ("cache", "entries"),
    ("mqo", "subquery_hits"),
    ("mqo", "query_attached"),
]

#: (section, key) pairs compared within FLOAT_TOLERANCE.
FLOAT_GATES = [
    ("totals", "makespan_ms"),
    ("totals", "throughput_per_s"),
    ("totals", "baseline_serial_ms"),
    ("totals", "speedup"),
    ("latency_ms", "p50"),
    ("latency_ms", "p99"),
]


def build_report():
    """One full replay from a freshly built federation and server."""
    federation = lubm.build_federation(4, seed=42)
    queries = workload_queries("lubm")
    config = TrafficConfig(requests=REQUESTS, tenants=4, seed=0)
    report, __, __ = run_traffic(federation, queries, config)
    return report


def check_report(report, problems: list[str]) -> None:
    totals = report["totals"]
    if totals["results_match_serial"] is not True:
        problems.append("served results are NOT identical to serial execution")
    if totals["failed"]:
        problems.append(f"{totals['failed']} requests failed on a fault-free replay")
    if totals["speedup"] < SPEEDUP_FLOOR:
        problems.append(
            f"speedup {totals['speedup']:.2f}x below the {SPEEDUP_FLOOR:.1f}x floor"
        )


def gate(report, problems: list[str]) -> None:
    if not BASELINE.exists():
        problems.append(
            "BENCH_serve.json baseline missing from repo root "
            "(generate with --write-baseline)"
        )
        return
    baseline = json.loads(BASELINE.read_text())
    for section, key in EXACT_GATES:
        current = report[section][key]
        expected = baseline.get(section, {}).get(key)
        if current != expected:
            problems.append(
                f"{section}.{key}: {current!r} != baseline {expected!r}"
            )
    for section, key in FLOAT_GATES:
        current = report[section][key]
        expected = baseline.get(section, {}).get(key)
        if expected is None:
            problems.append(f"{section}.{key}: missing from baseline")
            continue
        lo = expected / (1.0 + FLOAT_TOLERANCE) - 1e-9
        hi = expected * (1.0 + FLOAT_TOLERANCE) + 1e-9
        if not lo <= current <= hi:
            problems.append(
                f"{section}.{key}: {current:.3f} drifted from baseline "
                f"{expected:.3f} (±{FLOAT_TOLERANCE:.0%} allowed)"
            )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate BENCH_serve.json instead of gating against it",
    )
    args = parser.parse_args()

    first = build_report()

    if args.write_baseline:
        BASELINE.write_text(first.to_json() + "\n")
        print(f"serve smoke: wrote baseline {BASELINE}")
        return 0

    second = build_report()
    problems: list[str] = []
    if first.to_json() != second.to_json():
        problems.append("two fresh replays are not byte-identical")
    check_report(first, problems)
    gate(first.data, problems)

    if problems:
        for problem in problems:
            print(f"serve smoke: {problem}", file=sys.stderr)
        return 1
    totals = first["totals"]
    print(
        f"serve smoke: ok ({REQUESTS} requests replayed bit-identically; "
        f"{totals['throughput_per_s']:.0f} q/s, speedup "
        f"{totals['speedup']:.2f}x, results serial-identical)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
