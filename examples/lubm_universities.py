"""Compare Lusail against FedX / HiBISCuS / SPLENDID on LUBM universities.

Generates a decentralized LUBM federation (one endpoint per university)
and runs the paper's four queries (Sec VI-C) on every engine, printing
response times, request counts, and shipped rows — a miniature of the
paper's Fig 12.

Run:  python examples/lubm_universities.py [universities]
"""

import sys

from repro.datasets import lubm
from repro.harness import ENGINE_ORDER, make_engines, results_by_query, run_matrix


def main() -> None:
    universities = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    federation = lubm.build_federation(universities, profile=lubm.BENCH_PROFILE)
    print(
        f"LUBM federation: {universities} universities, "
        f"{federation.total_triples()} triples total"
    )

    engines = make_engines(federation)
    results = run_matrix(engines, lubm.queries())

    print("\nResponse time (virtual ms) per engine:")
    print(results_by_query(results, ENGINE_ORDER))

    print("\nRemote requests and shipped rows:")
    for result in results:
        print(
            f"  {result.engine:9s} {result.query}: {result.requests:5d} requests, "
            f"{result.rows_shipped:7d} rows shipped, {result.result_rows} results "
            f"[{result.status}]"
        )

    lusail_q4 = next(r for r in results if r.engine == "Lusail" and r.query == "Q4")
    fedx_q4 = next(r for r in results if r.engine == "FedX" and r.query == "Q4")
    if lusail_q4.ok and fedx_q4.ok:
        print(
            f"\nQ4 speedup (Lusail vs FedX): "
            f"{fedx_q4.virtual_ms / lusail_q4.virtual_ms:.1f}x"
        )


if __name__ == "__main__":
    main()
