"""Quickstart: build a two-endpoint decentralized graph and query it.

Recreates the paper's running example (Figs 1-2): two universities with
their own SPARQL endpoints, an interlink (Tim's PhD is from MIT, which is
described at the other endpoint), and the query Qa that must traverse it.

Run:  python examples/quickstart.py
"""

from repro.core.engine import LusailEngine
from repro.endpoint import Endpoint, Federation
from repro.rdf import Literal, Namespace, Triple, UB

MIT = Namespace("http://mit.example.org/")
CMU = Namespace("http://cmu.example.org/")


def build_federation() -> Federation:
    ep1 = Endpoint("EP1")  # MIT's endpoint
    ep1.add_all(
        [
            Triple(MIT.Lee, UB.advisor, MIT.Ben),
            Triple(MIT.Lee, UB.takesCourse, MIT.c1),
            Triple(MIT.Ben, UB.teacherOf, MIT.c1),
            Triple(MIT.Ben, UB.PhDDegreeFrom, MIT.MIT),
            Triple(MIT.MIT, UB.address, Literal("XXX")),
        ]
    )
    ep2 = Endpoint("EP2")  # CMU's endpoint
    ep2.add_all(
        [
            Triple(CMU.Kim, UB.advisor, CMU.Joy),
            Triple(CMU.Kim, UB.takesCourse, CMU.c2),
            Triple(CMU.Joy, UB.teacherOf, CMU.c2),
            Triple(CMU.Joy, UB.PhDDegreeFrom, CMU.CMU),
            Triple(CMU.CMU, UB.address, Literal("CCCC")),
            Triple(CMU.Kim, UB.advisor, CMU.Tim),
            Triple(CMU.Kim, UB.takesCourse, CMU.c3),
            Triple(CMU.Tim, UB.teacherOf, CMU.c3),
            # The interlink: Tim's alma mater lives at EP1.
            Triple(CMU.Tim, UB.PhDDegreeFrom, MIT.MIT),
        ]
    )
    return Federation([ep1, ep2])


QA = """
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?S ?P ?U ?A WHERE {
  ?S ub:advisor ?P .
  ?S ub:takesCourse ?C .
  ?P ub:teacherOf ?C .
  ?P ub:PhDDegreeFrom ?U .
  ?U ub:address ?A .
}
"""


def main() -> None:
    federation = build_federation()
    engine = LusailEngine(federation)

    outcome = engine.execute(QA)
    print("Query Qa over the decentralized graph:")
    for student, professor, university, address in outcome.result:
        print(
            f"  {student.local_name:4s} advised by {professor.local_name:4s} "
            f"(PhD from {university.local_name}, address {address.value!r})"
        )

    plan = engine.last_plan
    print(f"\nGlobal join variables detected by LADE: {plan.gjv_names}")
    print(f"Subqueries: {plan.subquery_count} "
          f"(check queries run: {plan.check_queries})")
    print(f"Remote requests: {outcome.metrics.request_count()} "
          f"({dict(outcome.metrics.requests_by_kind())})")
    print(f"Simulated response time: {outcome.metrics.virtual_ms:.2f} virtual ms")
    print("Phases:", {k: round(v, 2) for k, v in outcome.metrics.phase_ms.items()})

    # Second execution reuses the ASK/check/COUNT caches.
    warm = engine.execute(QA)
    print(f"\nWarm-cache run: {warm.metrics.request_count()} requests, "
          f"{warm.metrics.virtual_ms:.2f} virtual ms")


if __name__ == "__main__":
    main()
