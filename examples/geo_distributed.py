"""A geo-distributed federation across 7 cloud regions.

Mirrors the paper's Sec VI-D setup: endpoints spread over Azure regions
in the USA and Europe, the mediator in Central US.  Shows how WAN
latency amplifies the cost of chatty engines (FedX's serial bound joins)
while Lusail's few parallel requests stay close to their LAN times.

Run:  python examples/geo_distributed.py
"""

from repro.datasets import bio2rdf, lubm
from repro.harness import ENGINE_ORDER, make_engines, results_by_query, run_matrix
from repro.net.simulator import geo_distributed_config, local_cluster_config


def main() -> None:
    # --- LUBM, local cluster vs geo-distributed -------------------------
    print("LUBM (2 universities): local cluster vs geo-distributed cloud")
    for label, geo in (("local", False), ("geo", True)):
        federation = lubm.build_federation(2, profile=lubm.BENCH_PROFILE, geo=geo)
        config = geo_distributed_config() if geo else local_cluster_config()
        engines = make_engines(
            federation, network_config=config, which=("Lusail", "FedX"),
            timeout_ms=600_000,
        )
        results = run_matrix(engines, lubm.queries())
        print(f"\n[{label}]")
        print(results_by_query(results, ("Lusail", "FedX")))

    # --- Bio2RDF-style real endpoints ------------------------------------
    print("\nBio2RDF-style endpoints (R1-R3), geo-distributed:")
    federation = bio2rdf.build_federation(geo=True)
    engines = make_engines(
        federation,
        which=("Lusail", "FedX"),
        network_config=geo_distributed_config(),
        timeout_ms=600_000,
    )
    results = run_matrix(engines, bio2rdf.queries())
    print(results_by_query(results, ("Lusail", "FedX")))
    for result in results:
        if result.engine == "Lusail":
            print(
                f"  {result.query}: {result.result_rows} rows via "
                f"{result.requests} requests in {result.virtual_ms:.0f} virtual ms"
            )


if __name__ == "__main__":
    main()
