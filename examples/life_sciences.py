"""Federated life-science queries over QFed-style endpoints.

Builds the four interlinked QFed endpoints (Diseasome, DrugBank,
DailyMed, Sider) and answers the paper's Drug query: medicines that
target asthma with optional marketed-drug details — the query of the
paper's Sec II motivation experiment.

It then shows how LADE decomposes the query and how SAPE delays the
low-selectivity OPTIONAL subquery until drug bindings are known.

Run:  python examples/life_sciences.py
"""

from repro.core.engine import LusailEngine
from repro.datasets import qfed


def main() -> None:
    federation = qfed.build_federation(
        diseases=80, drugs=200, marketed=160, side_effects=240, drugs_per_disease=8
    )
    print("QFed federation:")
    for endpoint in federation:
        print(f"  {endpoint.name:10s} {len(endpoint.store):6d} triples")

    engine = LusailEngine(federation)
    outcome = engine.execute(qfed.drug_query())

    print(f"\nDrug query: {len(outcome.result)} medicines target asthma")
    for row in outcome.result.rows[:8]:
        drug, name, medicine, route = row
        marketed = f"marketed as {medicine.local_name} ({route.value})" if medicine else "not marketed"
        print(f"  {name.value:12s} -> {marketed}")

    plan = engine.last_plan.branch_plans[0]
    print("\nLADE decomposition:")
    for subquery in plan.subqueries:
        kind = "OPTIONAL" if subquery.optional_group is not None else "required"
        delayed = "delayed" if subquery.delayed else "eager"
        predicates = ", ".join(
            getattr(p.predicate, "local_name", "?") for p in subquery.patterns
        )
        print(
            f"  subquery {subquery.id} [{kind}, {delayed}] "
            f"patterns=({predicates}) sources={list(subquery.sources)} "
            f"estimated cardinality={subquery.estimated_cardinality:.0f}"
        )

    print(
        f"\n{outcome.metrics.request_count()} remote requests, "
        f"{outcome.metrics.rows_shipped()} rows shipped, "
        f"{outcome.metrics.virtual_ms:.2f} virtual ms"
    )

    # The C2P2 family: FILTER / big-literal / OPTIONAL variants.
    print("\nC2P2 query family:")
    for name, text in qfed.queries().items():
        result = engine.execute(text)
        print(
            f"  {name:8s} rows={len(result.result):5d} "
            f"requests={result.metrics.request_count():4d} "
            f"virtual_ms={result.metrics.virtual_ms:8.2f}"
        )


if __name__ == "__main__":
    main()
